//! The fabric: NIC front-ends (SMSG credits, FMA unit, BTE engine) bound to
//! the routed torus. This is the timing oracle the simulated uGNI API is
//! built on: every call returns *when* things complete and *how much CPU*
//! the initiating core burned, and the caller (the runtime driver) turns
//! those into discrete events.

use crate::fault::FaultKind;
use crate::lazy::{LazySlab, LazyVec};
use crate::links::LinkTable;
use crate::params::{GeminiParams, Mechanism, RdmaOp};
use crate::reg::RegTable;
use crate::topology::{LinkId, NodeId, Torus};
use sim_core::{DetRng, Time};
use std::collections::{HashMap, VecDeque};

/// Why an SMSG send could not be accepted right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmsgError {
    /// All mailbox credits for this connection are in flight; retry not
    /// before the embedded time.
    NoCredits { retry_at: Time },
    /// Payload exceeds the job-size-dependent SMSG limit.
    TooLarge { limit: u32 },
    /// An injected fault ate the transaction. `cpu` was still burned by the
    /// sender, the failure is reported to the sender's NIC at `error_at`,
    /// and when `delivered_at` is `Some` the payload *did* land at the
    /// receiver (corrupted completion): resending will duplicate it, so
    /// receivers need dedup.
    TransactionError {
        kind: FaultKind,
        cpu: Time,
        error_at: Time,
        delivered_at: Option<Time>,
    },
}

/// Result of an accepted SMSG send.
#[derive(Debug, Clone, Copy)]
pub struct SmsgOutcome {
    /// CPU time the sending core spent (charge as overhead).
    pub cpu: Time,
    /// When the message lands in the destination mailbox (remote CQ event).
    pub deliver_at: Time,
}

/// Result of an RDMA transaction post.
#[derive(Debug, Clone, Copy)]
pub struct RdmaOutcome {
    /// CPU time the initiating core spent.
    pub cpu: Time,
    /// When the initiator's completion queue sees the transaction done —
    /// or, for a faulted transaction, sees the error event.
    pub local_cq_at: Time,
    /// When the data is fully visible at the data-destination node
    /// (== `local_cq_at` for GET, the remote landing time for PUT).
    /// Meaningless unless the fault is `None` or `CorruptDelivered`.
    pub data_at: Time,
    /// Injected failure, if any. `Dropped`/`LinkDown` moved no data;
    /// `CorruptDelivered` moved the data but the completion is an error.
    pub fault: Option<FaultKind>,
}

#[derive(Debug, Default)]
struct SmsgConn {
    /// Times at which in-flight mailbox slots free up (credit returns).
    in_flight: VecDeque<Time>,
}

/// Aggregate traffic counters.
#[derive(Debug, Default, Clone)]
pub struct FabricStats {
    pub smsg_sends: u64,
    pub msgq_sends: u64,
    pub smsg_bytes: u64,
    pub fma_transactions: u64,
    pub bte_transactions: u64,
    pub rdma_bytes: u64,
    pub credit_stalls: u64,
    /// Injected SMSG/MSGQ transaction faults (drop + corrupt).
    pub faults_smsg: u64,
    /// Injected FMA/BTE transaction faults (drop + corrupt).
    pub faults_rdma: u64,
    /// Transactions refused because every minimal route crossed a downed
    /// link.
    pub faults_link_down: u64,
    /// Transactions refused because an endpoint node was inside a crash
    /// window: its NIC was not servicing any engine.
    pub faults_node_down: u64,
    /// Injected `GNI_MemRegister` resource failures.
    pub faults_reg: u64,
}

/// Materialization grain for per-node engine state (same reasoning as
/// `links::LINK_PAGE`: sparse jobs touch scattered nodes).
pub(crate) const NODE_PAGE: usize = 64;

/// The simulated interconnect.
#[derive(Debug)]
pub struct Fabric {
    pub params: GeminiParams,
    pub topo: Torus,
    links: LinkTable,
    /// Per-node FMA unit availability (SMSG and FMA transactions share it),
    /// split by direction: the hardware is full duplex. Lazily paged — a
    /// node's engine state materializes on its first gated transaction.
    fma_tx: LazyVec<Time, NODE_PAGE>,
    fma_rx: LazyVec<Time, NODE_PAGE>,
    /// Per-node BTE engine availability, split by direction.
    bte_tx: LazyVec<Time, NODE_PAGE>,
    bte_rx: LazyVec<Time, NODE_PAGE>,
    /// Lazily created per-connection SMSG state. Connections are between
    /// *processes* (PEs), not nodes — the paper: "It requires each
    /// peer-to-peer connection to create mailboxes for its both ends".
    conns: HashMap<(u32, u32), SmsgConn>,
    /// Per-node registration tables, materialized on first registration.
    reg: LazySlab<RegTable>,
    /// How many nodes this job actually spans (sets the SMSG size limit).
    job_nodes: u32,
    /// Dedicated RNG stream for fault injection, derived from the plan's
    /// own seed. Never consulted unless the relevant probability is
    /// nonzero, so an inert plan leaves runs bit-identical.
    fault_rng: DetRng,
    pub stats: FabricStats,
}

impl Fabric {
    /// Build a fabric for a job spanning `job_nodes` nodes. The torus holds
    /// the whole machine; the job occupies the first `job_nodes` node ids.
    pub fn new(params: GeminiParams, job_nodes: u32) -> Self {
        let topo = Torus::new(params.torus_dims);
        assert!(
            job_nodes <= topo.num_nodes(),
            "job ({job_nodes} nodes) exceeds machine ({})",
            topo.num_nodes()
        );
        let n = topo.num_nodes();
        let links = LinkTable::new(n, params.link_bw_gbs, params.hop_latency);
        Fabric {
            fma_tx: LazyVec::new(n as usize, 0),
            fma_rx: LazyVec::new(n as usize, 0),
            bte_tx: LazyVec::new(n as usize, 0),
            bte_rx: LazyVec::new(n as usize, 0),
            conns: HashMap::new(),
            reg: LazySlab::new(n as usize),
            links,
            topo,
            job_nodes,
            fault_rng: DetRng::derive(params.fault.seed, 0xFA17),
            params,
            stats: FabricStats::default(),
        }
    }

    /// Eager twin of [`Fabric::new`]: per-node engine, link, and
    /// registration state fully materialized up front (the original
    /// construction). Exists for the lazy-vs-eager differential proptests.
    pub fn new_eager(params: GeminiParams, job_nodes: u32) -> Self {
        let mut f = Self::new(params, job_nodes);
        let n = f.topo.num_nodes();
        f.links = LinkTable::new_eager(n, f.params.link_bw_gbs, f.params.hop_latency);
        f.fma_tx = LazyVec::new_eager(n as usize, 0);
        f.fma_rx = LazyVec::new_eager(n as usize, 0);
        f.bte_tx = LazyVec::new_eager(n as usize, 0);
        f.bte_rx = LazyVec::new_eager(n as usize, 0);
        f.reg = LazySlab::new_eager(n as usize);
        f
    }

    /// Materialized lazy-state pages across links/engines/registration
    /// (memory diagnostics for the scale harness and tests).
    pub fn materialized_pages(&self) -> usize {
        self.links.materialized_pages()
            + self.fma_tx.materialized_pages()
            + self.fma_rx.materialized_pages()
            + self.bte_tx.materialized_pages()
            + self.bte_rx.materialized_pages()
            + self.reg.materialized_pages()
    }

    /// Convenience: fabric sized exactly to the job (torus dims overridden
    /// to a near-cubic shape covering `job_nodes`).
    pub fn for_job(mut params: GeminiParams, job_nodes: u32) -> Self {
        params.torus_dims = near_cubic(job_nodes);
        Self::new(params, job_nodes)
    }

    pub fn job_nodes(&self) -> u32 {
        self.job_nodes
    }

    /// Effective SMSG payload limit for this job.
    pub fn smsg_limit(&self) -> u32 {
        self.params.smsg_max_size(self.job_nodes)
    }

    pub fn reg_table(&mut self, node: NodeId) -> &mut RegTable {
        self.reg.get_mut(node as usize)
    }

    /// Read-only view of a node's registration table. A node that never
    /// registered anything reads as an empty table (the shared pristine
    /// default) without materializing its slot.
    pub fn reg_table_ref(&self, node: NodeId) -> &RegTable {
        self.reg.get_ref(node as usize)
    }

    /// Choose a minimal route from `a` to `b`: dimension-ordered by
    /// default; with adaptive routing, the minimal dimension order whose
    /// links free up earliest (deterministic tie-break on canonical order).
    /// Routes crossing a downed link are avoided when any alternative
    /// minimal route is up; the returned flag is true when every candidate
    /// was down.
    fn pick_route(&self, a: NodeId, b: NodeId, at: Time) -> (Vec<LinkId>, bool) {
        let plan = &self.params.fault;
        if !self.params.adaptive_routing {
            let r = self.topo.route(a, b);
            let down = plan.route_is_down(&r, at);
            return (r, down);
        }
        // Ordering on (down, busy): an up route always beats a down one.
        let mut best: Option<(bool, Time, Vec<LinkId>)> = None;
        for order in [[0u8, 1, 2], [1, 0, 2], [2, 1, 0]] {
            let r = self.topo.route_ordered(a, b, order);
            let down = plan.route_is_down(&r, at);
            let busy = self.links.path_busy(&r);
            match &best {
                Some((b_down, b_busy, _)) if (*b_down, *b_busy) <= (down, busy) => {}
                _ => best = Some((down, busy, r)),
            }
        }
        // panic-ok: the torus always yields at least one candidate route
        let (down, _, r) = best.expect("at least one candidate route");
        (r, down)
    }

    /// Is either endpoint of a transaction inside a node-crash window at
    /// `at`? Purely schedule-driven — never touches the fault RNG, so plans
    /// whose only entries are crash windows leave every surviving
    /// transaction's timing and fault stream untouched.
    fn endpoint_down(&self, a: NodeId, b: NodeId, at: Time) -> bool {
        let f = &self.params.fault;
        !f.node_crash.is_empty() && (f.node_is_down(a, at) || f.node_is_down(b, at))
    }

    /// Roll the fault dice for one transaction. Draws from the fault RNG
    /// only when a probability is actually nonzero.
    fn fault_decide(&mut self, drop_p: f64, corrupt_p: f64) -> Option<FaultKind> {
        if drop_p <= 0.0 && corrupt_p <= 0.0 {
            return None;
        }
        let u = self.fault_rng.unit();
        if u < drop_p {
            Some(FaultKind::Dropped)
        } else if u < drop_p + corrupt_p {
            Some(FaultKind::CorruptDelivered)
        } else {
            None
        }
    }

    /// Roll for a transient `GNI_MemRegister` resource failure (called by
    /// the uGNI layer on every registration attempt).
    pub fn reg_fault_roll(&mut self) -> bool {
        let p = self.params.fault.reg_fail;
        if p <= 0.0 {
            return false;
        }
        if self.fault_rng.unit() < p {
            self.stats.faults_reg += 1;
            true
        } else {
            false
        }
    }

    /// Send one SMSG of `bytes` from `src` to `dst` node at time `now`,
    /// over the peer-to-peer connection `conn` (a pair of process ids; the
    /// mailbox credits belong to the connection, the routing to the nodes).
    ///
    /// Credits are reclaimed lazily: slots whose release time has passed
    /// are freed before the credit check, which keeps the fabric free of
    /// callbacks. The credit returns one control-latency after the receiver
    /// could have drained the mailbox.
    pub fn smsg_send(
        &mut self,
        now: Time,
        src: NodeId,
        dst: NodeId,
        conn_key: (u32, u32),
        bytes: u64,
    ) -> Result<SmsgOutcome, SmsgError> {
        let limit = self.smsg_limit();
        if bytes > limit as u64 {
            return Err(SmsgError::TooLarge { limit });
        }
        let credits = self.params.smsg_credits;
        let conn = self.conns.entry(conn_key).or_default();
        while conn.in_flight.front().is_some_and(|&t| t <= now) {
            conn.in_flight.pop_front();
        }
        if conn.in_flight.len() >= credits as usize {
            self.stats.credit_stalls += 1;
            // panic-ok: nonempty — in_flight.len() >= credits >= 1 just above
            let retry_at = *conn.in_flight.front().unwrap();
            return Err(SmsgError::NoCredits { retry_at });
        }

        let route = self.topo.route(src, dst);
        let cpu = self.params.smsg_send_cpu;
        // Crashed endpoint: the NIC on one side is dead, so nothing is
        // transmitted and no fault RNG is consulted.
        if self.endpoint_down(src, dst, now) {
            self.stats.faults_node_down += 1;
            let error_at =
                now + cpu + self.params.injection_latency + self.links.control_latency(&route);
            return Err(SmsgError::TransactionError {
                kind: FaultKind::NodeDown,
                cpu,
                error_at,
                delivered_at: None,
            });
        }
        // Link outage: nothing is transmitted; the sending NIC learns of
        // the dead path after a control round-trip.
        if self.params.fault.route_is_down(&route, now) {
            self.stats.faults_link_down += 1;
            let error_at =
                now + cpu + self.params.injection_latency + self.links.control_latency(&route);
            return Err(SmsgError::TransactionError {
                kind: FaultKind::LinkDown,
                cpu,
                error_at,
                delivered_at: None,
            });
        }
        let (drop_p, corrupt_p) = (self.params.fault.smsg_drop, self.params.fault.smsg_corrupt);
        let fault = self.fault_decide(drop_p, corrupt_p);

        let p = &self.params;
        // SMSG packets interleave with bulk FMA traffic (sub-chunk sized),
        // so they neither wait for nor occupy the engine window; they still
        // contend for link bandwidth.
        let inject = now + cpu + p.smsg_nic_latency + p.injection_latency;
        let (_depart, arrive) = self.links.reserve(inject, &route, bytes, p.fma_bw_gbs);
        let deliver_at = arrive + p.ejection_latency;

        // Credit returns after the receiver drains the slot and the NIC-level
        // ack crosses back.
        let back = self.links.control_latency(&route);
        let release = deliver_at + p.smsg_recv_cpu + back + p.injection_latency;

        self.stats.smsg_sends += 1;
        self.stats.smsg_bytes += bytes;
        // panic-ok: entry materialized by or_default at the top of this fn
        let conn = self.conns.get_mut(&conn_key).unwrap();
        conn.in_flight.push_back(release);
        match fault {
            None => Ok(SmsgOutcome { cpu, deliver_at }),
            Some(kind) => {
                self.stats.faults_smsg += 1;
                // The failure (lost data or corrupted completion) surfaces
                // to the sender once the NIC-level nack/timeout crosses
                // back; the mailbox slot is reclaimed as usual.
                Err(SmsgError::TransactionError {
                    kind,
                    cpu,
                    error_at: deliver_at + back,
                    delivered_at: match kind {
                        FaultKind::CorruptDelivered => Some(deliver_at),
                        _ => None,
                    },
                })
            }
        }
    }

    /// CPU cost for the receiver to dequeue and copy out one SMSG of
    /// `bytes` (GNI_SmsgGetNextWTag + copy into a runtime buffer).
    pub fn smsg_recv_cost(&self, bytes: u64) -> Time {
        self.params.smsg_recv_cpu
            + (self.params.smsg_copy_ns_per_byte * bytes as f64).ceil() as Time
    }

    /// Send a small message through the shared per-node message queue
    /// (MSGQ, paper §II-B): slower than SMSG, but mailbox memory is per
    /// node rather than per peer. Credits are shared per destination node.
    pub fn msgq_send(
        &mut self,
        now: Time,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
    ) -> Result<SmsgOutcome, SmsgError> {
        let limit = self.smsg_limit();
        if bytes > limit as u64 {
            return Err(SmsgError::TooLarge { limit });
        }
        let credits = self.params.msgq_credits;
        // Shared credits: the connection key is the destination node.
        let conn = self.conns.entry((u32::MAX, dst)).or_default();
        while conn.in_flight.front().is_some_and(|&t| t <= now) {
            conn.in_flight.pop_front();
        }
        if conn.in_flight.len() >= credits as usize {
            self.stats.credit_stalls += 1;
            // panic-ok: nonempty — in_flight.len() >= credits >= 1 just above
            let retry_at = *conn.in_flight.front().unwrap();
            return Err(SmsgError::NoCredits { retry_at });
        }

        let route = self.topo.route(src, dst);
        let cpu = self.params.smsg_send_cpu + self.params.msgq_extra_cpu;
        if self.endpoint_down(src, dst, now) {
            self.stats.faults_node_down += 1;
            let error_at =
                now + cpu + self.params.injection_latency + self.links.control_latency(&route);
            return Err(SmsgError::TransactionError {
                kind: FaultKind::NodeDown,
                cpu,
                error_at,
                delivered_at: None,
            });
        }
        if self.params.fault.route_is_down(&route, now) {
            self.stats.faults_link_down += 1;
            let error_at =
                now + cpu + self.params.injection_latency + self.links.control_latency(&route);
            return Err(SmsgError::TransactionError {
                kind: FaultKind::LinkDown,
                cpu,
                error_at,
                delivered_at: None,
            });
        }
        let (drop_p, corrupt_p) = (self.params.fault.smsg_drop, self.params.fault.smsg_corrupt);
        let fault = self.fault_decide(drop_p, corrupt_p);

        let p = &self.params;
        let nic_ready = (now + cpu).max(self.fma_tx.get(src as usize));
        let inject = nic_ready + p.smsg_nic_latency + p.msgq_extra_latency + p.injection_latency;
        let (depart, arrive) = self.links.reserve(inject, &route, bytes, p.fma_bw_gbs);
        let ser = arrive - depart - p.hop_latency * route.len() as Time;
        *self.fma_tx.get_mut(src as usize) = depart + ser;
        let deliver_at = arrive + p.ejection_latency;

        let back = self.links.control_latency(&route);
        let release = deliver_at + p.smsg_recv_cpu + p.msgq_extra_cpu + back + p.injection_latency;
        // panic-ok: entry materialized by or_default at the top of this fn
        let conn = self.conns.get_mut(&(u32::MAX, dst)).unwrap();
        conn.in_flight.push_back(release);

        self.stats.msgq_sends += 1;
        self.stats.smsg_bytes += bytes;
        match fault {
            None => Ok(SmsgOutcome { cpu, deliver_at }),
            Some(kind) => {
                self.stats.faults_smsg += 1;
                Err(SmsgError::TransactionError {
                    kind,
                    cpu,
                    error_at: deliver_at + back,
                    delivered_at: match kind {
                        FaultKind::CorruptDelivered => Some(deliver_at),
                        _ => None,
                    },
                })
            }
        }
    }

    /// CPU cost for the receiver to dequeue one MSGQ message.
    pub fn msgq_recv_cost(&self, bytes: u64) -> Time {
        self.smsg_recv_cost(bytes) + self.params.msgq_extra_cpu
    }

    /// Post an RDMA transaction of `bytes` between `initiator` and
    /// `remote`. For `Get`, data flows remote -> initiator; for `Put`,
    /// initiator -> remote. Both sides' memory must already be registered
    /// (enforced by the uGNI layer above, which holds the handles).
    pub fn rdma(
        &mut self,
        now: Time,
        initiator: NodeId,
        remote: NodeId,
        bytes: u64,
        mech: Mechanism,
        op: RdmaOp,
    ) -> RdmaOutcome {
        let p = self.params.clone();
        self.stats.rdma_bytes += bytes;
        match mech {
            Mechanism::Fma => self.stats.fma_transactions += 1,
            Mechanism::Bte => self.stats.bte_transactions += 1,
        }

        // CPU involvement and engine costs.
        let (cpu, bw_cap, startup) = match mech {
            Mechanism::Fma => {
                let chunks = bytes.div_ceil(p.fma_chunk_bytes as u64);
                let cpu = p.fma_post_cpu + chunks * p.fma_chunk_cpu;
                (cpu, p.fma_bw_gbs, p.fma_nic_latency)
            }
            Mechanism::Bte => (p.bte_post_cpu, p.bte_bw_gbs, p.bte_startup),
        };

        // Data path endpoints.
        let (data_src, data_dst) = match op {
            RdmaOp::Put => (initiator, remote),
            RdmaOp::Get => (remote, initiator),
        };

        // Route first: adaptive routing steers around downed links when any
        // minimal route is still up. If every candidate is down, the
        // transaction fails without touching the wire — the NIC raises an
        // error CQ event after the dead path is discovered.
        let (route, route_down) = self.pick_route(data_src, data_dst, now);
        if self.endpoint_down(data_src, data_dst, now) {
            self.stats.faults_node_down += 1;
            let error_at =
                now + cpu + startup + p.injection_latency + self.links.control_latency(&route);
            return RdmaOutcome {
                cpu,
                local_cq_at: error_at,
                data_at: error_at,
                fault: Some(FaultKind::NodeDown),
            };
        }
        if route_down {
            self.stats.faults_link_down += 1;
            let error_at =
                now + cpu + startup + p.injection_latency + self.links.control_latency(&route);
            return RdmaOutcome {
                cpu,
                local_cq_at: error_at,
                data_at: error_at,
                fault: Some(FaultKind::LinkDown),
            };
        }
        let (drop_p, corrupt_p) = match mech {
            Mechanism::Fma => (p.fault.fma_drop, p.fault.fma_corrupt),
            Mechanism::Bte => (p.fault.bte_drop, p.fault.bte_corrupt),
        };
        let fault = self.fault_decide(drop_p, corrupt_p);
        if fault.is_some() {
            self.stats.faults_rdma += 1;
        }

        // The transfer needs the source node's outbound engine and the
        // destination node's inbound engine (the hardware is full duplex,
        // so opposite directions never contend). This shared-NIC occupancy
        // is what makes routing intra-node traffic through uGNI "interfere
        // with uGNI handling inter-node communication" (paper §IV-C).
        // Short transfers interleave at packet granularity instead of
        // reserving the engine for a whole-message window.
        let gated = bytes > p.engine_gate_min_bytes;
        let gate = if gated {
            let (tx, rx) = match mech {
                Mechanism::Fma => (&self.fma_tx, &self.fma_rx),
                Mechanism::Bte => (&self.bte_tx, &self.bte_rx),
            };
            tx.get(data_src as usize).max(rx.get(data_dst as usize))
        } else {
            0
        };

        // Descriptor setup and (for GET) the request traversal pipeline
        // with earlier transfers — only the *data window* waits for the
        // engine. Without this overlap, back-to-back small transfers from
        // one node would space out by setup+request (~2 µs) instead of
        // their serialization time, which real NICs do not do.
        let ready = now + cpu + startup;
        let start = match op {
            RdmaOp::Put => ready + p.injection_latency,
            RdmaOp::Get => {
                let req_route = self.topo.route(initiator, remote);
                ready
                    + p.injection_latency
                    + self.links.control_latency(&req_route)
                    + p.get_request_overhead
            }
        };

        let (depart, arrive) = self.links.reserve(start.max(gate), &route, bytes, bw_cap);
        let ser = arrive - depart - p.hop_latency * route.len() as Time;

        if gated {
            let (tx, rx) = match mech {
                Mechanism::Fma => (&mut self.fma_tx, &mut self.fma_rx),
                Mechanism::Bte => (&mut self.bte_tx, &mut self.bte_rx),
            };
            let t = tx.get_mut(data_src as usize);
            *t = (*t).max(depart + ser);
            let r = rx.get_mut(data_dst as usize);
            *r = (*r).max(depart + ser);
        }

        let landed = arrive + p.ejection_latency;
        match op {
            RdmaOp::Put => {
                // Local completion after the remote NIC acks back.
                let ack = self.links.control_latency(&route);
                RdmaOutcome {
                    cpu,
                    local_cq_at: landed + ack,
                    data_at: landed,
                    fault,
                }
            }
            RdmaOp::Get => RdmaOutcome {
                cpu,
                local_cq_at: landed,
                data_at: landed,
                fault,
            },
        }
    }

    /// One-way latency of a minimal control packet between two nodes,
    /// without reserving bandwidth (used by tests and models).
    pub fn control_one_way(&self, src: NodeId, dst: NodeId) -> Time {
        let route = self.topo.route(src, dst);
        self.params.injection_latency
            + self.links.control_latency(&route)
            + self.params.ejection_latency
    }

    /// Diagnostics.
    pub fn total_link_bytes(&self) -> u64 {
        self.links.total_bytes()
    }

    /// Read-only view of the link table (diagnostics / differential tests).
    pub fn links_ref(&self) -> &LinkTable {
        &self.links
    }
}

/// Choose a near-cubic torus covering at least `n` nodes.
pub fn near_cubic(n: u32) -> (u32, u32, u32) {
    let mut x = (n as f64).cbrt().floor().max(1.0) as u32;
    while x > 1 && !n.is_multiple_of(x) {
        x -= 1;
    }
    let rest = n / x;
    let mut y = (rest as f64).sqrt().floor().max(1.0) as u32;
    while y > 1 && !rest.is_multiple_of(y) {
        y -= 1;
    }
    let z = rest / y;
    debug_assert_eq!(x * y * z, n);
    (x, y, z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::time;

    fn fabric() -> Fabric {
        Fabric::new(GeminiParams::test_small(), 8)
    }

    #[test]
    fn near_cubic_covers_exactly() {
        for n in [1u32, 2, 3, 8, 16, 24, 160, 640, 3264] {
            let (x, y, z) = near_cubic(n);
            assert_eq!(x * y * z, n, "n={n}");
        }
    }

    #[test]
    fn smsg_small_message_latency_near_paper() {
        // Pure uGNI 8-byte one-way latency on Hopper was ~1.2us; the model
        // should land in 0.9..1.5us for adjacent nodes.
        let mut f = Fabric::new(GeminiParams::hopper(), 16);
        let out = f.smsg_send(0, 0, 1, (0, 1), 8).unwrap();
        let total = out.deliver_at + f.smsg_recv_cost(8);
        assert!(
            (900..1500).contains(&total),
            "8B smsg total {total}ns out of calibration band"
        );
    }

    #[test]
    fn smsg_rejects_oversize() {
        let mut f = fabric();
        let limit = f.smsg_limit() as u64;
        assert!(matches!(
            f.smsg_send(0, 0, 1, (0, 1), limit + 1),
            Err(SmsgError::TooLarge { .. })
        ));
        assert!(f.smsg_send(0, 0, 1, (0, 1), limit).is_ok());
    }

    #[test]
    fn smsg_credits_exhaust_and_recover() {
        let mut f = fabric();
        let credits = f.params.smsg_credits;
        let mut retry = 0;
        for i in 0..credits + 2 {
            match f.smsg_send(0, 0, 1, (0, 1), 64) {
                Ok(_) => assert!(i < credits, "more sends than credits at t=0"),
                Err(SmsgError::NoCredits { retry_at }) => {
                    assert!(i >= credits);
                    retry = retry_at;
                }
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert!(retry > 0);
        // After the release time, sends flow again.
        assert!(f.smsg_send(retry, 0, 1, (0, 1), 64).is_ok());
        assert!(f.stats.credit_stalls >= 2);
    }

    #[test]
    fn smsg_is_fifo_per_connection() {
        let mut f = fabric();
        let a = f.smsg_send(0, 0, 1, (0, 1), 512).unwrap();
        let b = f.smsg_send(0, 0, 1, (0, 1), 8).unwrap();
        assert!(
            b.deliver_at > a.deliver_at,
            "later send may not overtake on same connection"
        );
    }

    #[test]
    fn bte_beats_fma_for_large_messages() {
        let mut f1 = fabric();
        let mut f2 = fabric();
        let big = 256 * 1024;
        let fma = f1.rdma(0, 0, 1, big, Mechanism::Fma, RdmaOp::Get);
        let bte = f2.rdma(0, 0, 1, big, Mechanism::Bte, RdmaOp::Get);
        assert!(bte.local_cq_at < fma.local_cq_at, "BTE should win at 256K");
        assert!(bte.cpu < fma.cpu, "BTE offloads the CPU");
    }

    #[test]
    fn fma_beats_bte_for_small_messages() {
        let mut f1 = fabric();
        let mut f2 = fabric();
        let small = 1024;
        let fma = f1.rdma(0, 0, 1, small, Mechanism::Fma, RdmaOp::Get);
        let bte = f2.rdma(0, 0, 1, small, Mechanism::Bte, RdmaOp::Get);
        assert!(fma.local_cq_at < bte.local_cq_at, "FMA should win at 1K");
    }

    #[test]
    fn crossover_is_in_paper_band() {
        // Paper §II-A: FMA/BTE crossover between 2048 and 8192 bytes.
        let mut cross = None;
        for exp in 8..20 {
            let bytes = 1u64 << exp;
            let mut f1 = fabric();
            let mut f2 = fabric();
            let fma = f1.rdma(0, 0, 1, bytes, Mechanism::Fma, RdmaOp::Get);
            let bte = f2.rdma(0, 0, 1, bytes, Mechanism::Bte, RdmaOp::Get);
            if bte.local_cq_at <= fma.local_cq_at {
                cross = Some(bytes);
                break;
            }
        }
        let cross = cross.expect("no crossover found");
        assert!(
            (2048..=8192).contains(&cross),
            "crossover {cross} outside paper band"
        );
    }

    #[test]
    fn get_pays_request_trip_over_put() {
        let mut f1 = fabric();
        let mut f2 = fabric();
        let put = f1.rdma(0, 0, 1, 4096, Mechanism::Fma, RdmaOp::Put);
        let get = f2.rdma(0, 0, 1, 4096, Mechanism::Fma, RdmaOp::Get);
        assert!(get.data_at > put.data_at, "GET adds a request traversal");
    }

    #[test]
    fn put_local_completion_trails_remote_visibility() {
        let mut f = fabric();
        let put = f.rdma(0, 0, 1, 4096, Mechanism::Bte, RdmaOp::Put);
        assert!(put.local_cq_at >= put.data_at);
    }

    #[test]
    fn concurrent_bte_transfers_serialize_on_engine() {
        let mut f = fabric();
        let a = f.rdma(0, 0, 1, 1 << 20, Mechanism::Bte, RdmaOp::Put);
        let b = f.rdma(0, 0, 1, 1 << 20, Mechanism::Bte, RdmaOp::Put);
        // Second transfer finishes roughly one serialization later.
        let ser = time::transfer_ns(1 << 20, f.params.bte_bw_gbs);
        assert!(b.data_at >= a.data_at + ser / 2);
    }

    #[test]
    fn intra_node_rdma_skips_routing() {
        let mut f = fabric();
        let same = f.rdma(0, 0, 0, 65536, Mechanism::Bte, RdmaOp::Put);
        let mut f2 = fabric();
        let cross = f2.rdma(0, 0, 1, 65536, Mechanism::Bte, RdmaOp::Put);
        assert!(same.data_at < cross.data_at);
    }

    #[test]
    fn bandwidth_approaches_link_rate() {
        // Windowed BTE transfers should sustain near 6 GB/s.
        let mut f = Fabric::new(GeminiParams::hopper(), 16);
        let bytes = 4u64 << 20;
        let reps = 8;
        let mut last = 0;
        for _ in 0..reps {
            let o = f.rdma(last, 0, 1, bytes, Mechanism::Bte, RdmaOp::Get);
            last = o.local_cq_at;
        }
        let gbs = (bytes * reps) as f64 / last as f64;
        assert!(gbs > 4.5, "sustained {gbs:.2} GB/s too low");
        assert!(gbs <= 6.0 + 1e-9, "sustained {gbs:.2} GB/s above link rate");
    }

    #[test]
    fn adaptive_routing_avoids_hot_links() {
        let mut p = GeminiParams::test_small();
        p.torus_dims = (4, 4, 1);
        p.adaptive_routing = true;
        let mut f = Fabric::new(p.clone(), 16);
        let topo = Torus::new(p.torus_dims);
        let a = topo.node_at((0, 0, 0));
        let b = topo.node_at((2, 2, 0));
        // Saturate the x-first path with a big transfer, then send again:
        // the adaptive pick should finish no later than a forced repeat of
        // the same DOR path would.
        let first = f.rdma(0, a, b, 4 << 20, Mechanism::Bte, RdmaOp::Put);
        let second = f.rdma(0, a, b, 4 << 20, Mechanism::Bte, RdmaOp::Put);
        // With adaptivity the second transfer's links differ; it cannot be
        // gated by the first's serialization window on shared links (the
        // BTE engine itself still serializes, which bounds the gain).
        assert!(second.data_at >= first.data_at, "sanity");
        let mut f2 = Fabric::new(
            {
                let mut q = p.clone();
                q.adaptive_routing = false;
                q
            },
            16,
        );
        let _ = f2.rdma(0, a, b, 4 << 20, Mechanism::Bte, RdmaOp::Put);
        let second_dor = f2.rdma(0, a, b, 4 << 20, Mechanism::Bte, RdmaOp::Put);
        assert!(
            second.data_at <= second_dor.data_at,
            "adaptive {} should not lose to DOR {}",
            second.data_at,
            second_dor.data_at
        );
    }

    #[test]
    fn get_occupies_source_nic_too() {
        // A GET initiated by node 1 pulling from node 0 must occupy node
        // 0's BTE as data source, delaying a subsequent loopback GET there.
        let mut f = fabric();
        let big = 1u64 << 20;
        let pull = f.rdma(0, 1, 0, big, Mechanism::Bte, RdmaOp::Get);
        let loopback = f.rdma(0, 0, 0, big, Mechanism::Bte, RdmaOp::Get);
        let mut f2 = fabric();
        let iso = f2.rdma(0, 0, 0, big, Mechanism::Bte, RdmaOp::Get);
        assert!(
            loopback.local_cq_at > iso.local_cq_at,
            "loopback {} should be delayed past isolated {} by the pull {}",
            loopback.local_cq_at,
            iso.local_cq_at,
            pull.local_cq_at
        );
    }

    #[test]
    fn msgq_slower_but_works() {
        let mut f = fabric();
        let smsg = f.smsg_send(0, 0, 1, (0, 1), 256).unwrap();
        let mut f2 = fabric();
        let msgq = f2.msgq_send(0, 0, 1, 256).unwrap();
        assert!(msgq.deliver_at > smsg.deliver_at, "MSGQ must be slower");
        assert!(msgq.cpu > smsg.cpu);
        assert!(f2.msgq_recv_cost(256) > f2.smsg_recv_cost(256));
        assert_eq!(f2.stats.msgq_sends, 1);
    }

    #[test]
    fn msgq_credits_shared_per_destination_node() {
        let mut f = Fabric::new(GeminiParams::test_small(), 8);
        let credits = f.params.msgq_credits;
        // Several *different* sources share the destination's queue.
        let mut sent = 0;
        'outer: for src in [0u32, 2, 3, 4] {
            for _ in 0..credits {
                match f.msgq_send(0, src, 1, 64) {
                    Ok(_) => sent += 1,
                    Err(SmsgError::NoCredits { .. }) => break 'outer,
                    Err(e) => panic!("{e:?}"),
                }
            }
        }
        assert_eq!(sent, credits, "shared credit pool exhausted at node level");
    }

    #[test]
    fn smsg_drop_reports_transaction_error() {
        let mut p = GeminiParams::test_small();
        p.fault = crate::fault::FaultPlan::uniform_drop(7, 1.0);
        let mut f = Fabric::new(p, 8);
        match f.smsg_send(0, 0, 1, (0, 1), 64) {
            Err(SmsgError::TransactionError {
                kind: crate::fault::FaultKind::Dropped,
                cpu,
                error_at,
                delivered_at,
            }) => {
                assert!(cpu > 0, "sender still burned CPU");
                assert!(error_at > cpu, "error surfaces after the wire trip");
                assert!(delivered_at.is_none(), "dropped data never lands");
            }
            other => panic!("expected drop, got {other:?}"),
        }
        assert_eq!(f.stats.faults_smsg, 1);
    }

    #[test]
    fn smsg_corrupt_still_delivers_payload() {
        let mut p = GeminiParams::test_small();
        p.fault.seed = 7;
        p.fault.smsg_corrupt = 1.0;
        let mut f = Fabric::new(p, 8);
        match f.smsg_send(0, 0, 1, (0, 1), 64) {
            Err(SmsgError::TransactionError {
                kind: crate::fault::FaultKind::CorruptDelivered,
                delivered_at,
                error_at,
                ..
            }) => {
                let d = delivered_at.expect("corrupt delivery lands the data");
                assert!(error_at >= d, "sender learns after the landing");
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
    }

    #[test]
    fn link_down_window_fails_then_recovers() {
        let mut p = GeminiParams::test_small();
        // Node 0 -> 1 differs in x: DOR uses node 0's x-link.
        p.fault.link_down.push(crate::fault::LinkDownWindow {
            node: 0,
            dim: 0,
            plus: true,
            from_ns: 0,
            until_ns: 50_000,
        });
        let mut f = Fabric::new(p, 8);
        assert!(matches!(
            f.smsg_send(10, 0, 1, (0, 1), 64),
            Err(SmsgError::TransactionError {
                kind: crate::fault::FaultKind::LinkDown,
                ..
            })
        ));
        assert_eq!(f.stats.faults_link_down, 1);
        // After the window lifts the same send succeeds.
        assert!(f.smsg_send(50_000, 0, 1, (0, 1), 64).is_ok());
    }

    #[test]
    fn rdma_drop_flags_outcome() {
        let mut p = GeminiParams::test_small();
        p.fault = crate::fault::FaultPlan::uniform_drop(3, 1.0);
        let mut f = Fabric::new(p, 8);
        let out = f.rdma(0, 0, 1, 8192, Mechanism::Bte, RdmaOp::Put);
        assert_eq!(out.fault, Some(crate::fault::FaultKind::Dropped));
        assert!(out.local_cq_at > 0, "error event still has a CQ time");
        assert_eq!(f.stats.faults_rdma, 1);
    }

    #[test]
    fn adaptive_routing_steers_around_down_link() {
        let mut p = GeminiParams::test_small();
        p.torus_dims = (4, 4, 1);
        p.adaptive_routing = true;
        // Take down the x-first exit link of the source for the whole run.
        p.fault.link_down.push(crate::fault::LinkDownWindow {
            node: 0,
            dim: 0,
            plus: true,
            from_ns: 0,
            until_ns: Time::MAX,
        });
        let mut f = Fabric::new(p.clone(), 16);
        let topo = Torus::new(p.torus_dims);
        let a = topo.node_at((0, 0, 0));
        let b = topo.node_at((2, 2, 0));
        // A minimal y-first route exists and is up: no fault.
        let out = f.rdma(0, a, b, 1 << 16, Mechanism::Bte, RdmaOp::Put);
        assert_eq!(out.fault, None, "adaptive routing must avoid the outage");
        // Same scenario without adaptivity fails on the DOR route.
        let mut q = p.clone();
        q.adaptive_routing = false;
        let mut f2 = Fabric::new(q, 16);
        let out2 = f2.rdma(0, a, b, 1 << 16, Mechanism::Bte, RdmaOp::Put);
        assert_eq!(out2.fault, Some(crate::fault::FaultKind::LinkDown));
    }

    #[test]
    fn fault_sequence_is_deterministic() {
        let run = || {
            let mut p = GeminiParams::test_small();
            p.fault = crate::fault::FaultPlan::uniform_drop(42, 0.3);
            let mut f = Fabric::new(p, 8);
            (0..64)
                .map(|i| f.smsg_send(i * 10_000, 0, 1, (0, 1), 64).is_ok())
                .collect::<Vec<bool>>()
        };
        let a = run();
        assert_eq!(a, run(), "same plan + seed must fail identically");
        assert!(a.iter().any(|ok| !ok), "p=0.3 over 64 sends should fault");
        assert!(a.iter().any(|ok| *ok));
    }

    #[test]
    fn reg_fault_roll_respects_probability() {
        let mut p = GeminiParams::test_small();
        p.fault.reg_fail = 1.0;
        let mut f = Fabric::new(p, 8);
        assert!(f.reg_fault_roll());
        assert_eq!(f.stats.faults_reg, 1);
        let mut f2 = fabric(); // inert plan
        assert!(!f2.reg_fault_roll());
        assert_eq!(f2.stats.faults_reg, 0);
    }

    #[test]
    fn stats_accumulate() {
        let mut f = fabric();
        f.smsg_send(0, 0, 1, (0, 1), 100).unwrap();
        f.rdma(0, 0, 1, 5000, Mechanism::Bte, RdmaOp::Get);
        f.rdma(0, 0, 1, 500, Mechanism::Fma, RdmaOp::Put);
        assert_eq!(f.stats.smsg_sends, 1);
        assert_eq!(f.stats.smsg_bytes, 100);
        assert_eq!(f.stats.bte_transactions, 1);
        assert_eq!(f.stats.fma_transactions, 1);
        assert_eq!(f.stats.rdma_bytes, 5500);
        assert!(f.total_link_bytes() > 0);
    }
}

/// Differential proptests: the lazily materialized fabric must be
/// observationally equivalent to the eager-allocation construction it
/// replaced — same outcome stream, same per-link state, same registration
/// books — under random torus shapes, traffic patterns, and fault plans.
#[cfg(test)]
mod lazy_equivalence {
    use super::*;
    use crate::fault::{FaultPlan, LinkDownWindow, NodeCrashWindow};
    use crate::reg::Addr;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Smsg {
            src: u32,
            dst: u32,
            conn: (u32, u32),
            bytes: u64,
        },
        Msgq {
            src: u32,
            dst: u32,
            bytes: u64,
        },
        Rdma {
            initiator: u32,
            remote: u32,
            bytes: u64,
            bte: bool,
            put: bool,
        },
        Register {
            node: u32,
            addr: u64,
            bytes: u64,
        },
    }

    fn op_strategy() -> impl Strategy<Value = (Op, Time)> {
        (
            0u8..4,
            any::<u32>(),
            any::<u32>(),
            1u64..1_000_000,
            any::<u64>(),
        )
            .prop_map(|(kind, a, b, bytes, x)| {
                let op = match kind {
                    0 => Op::Smsg {
                        src: a,
                        dst: b,
                        conn: ((x >> 16) as u32 % 64, (x >> 40) as u32 % 64),
                        bytes: bytes % 2048 + 1,
                    },
                    1 => Op::Msgq {
                        src: a,
                        dst: b,
                        bytes: bytes % 2048 + 1,
                    },
                    2 => Op::Rdma {
                        initiator: a,
                        remote: b,
                        bytes,
                        bte: x & 1 == 1,
                        put: x & 2 == 2,
                    },
                    _ => Op::Register {
                        node: a,
                        addr: x,
                        bytes: bytes % 65536 + 64,
                    },
                };
                (op, x % 20_000)
            })
    }

    fn plan_strategy() -> impl Strategy<Value = FaultPlan> {
        (
            any::<u64>(),
            0.0f64..0.4,
            0.0f64..0.3,
            proptest::option::of((
                0u32..64,
                0u8..3,
                any::<bool>(),
                0u64..200_000u64,
                1u64..400_000u64,
            )),
            proptest::option::of((
                0u32..64,
                0u64..300_000u64,
                proptest::option::of(1u64..200_000u64),
            )),
        )
            .prop_map(|(seed, drop_p, corrupt_p, link, crash)| {
                let mut plan = FaultPlan::uniform_drop(seed, drop_p);
                plan.smsg_corrupt = corrupt_p;
                plan.fma_corrupt = corrupt_p;
                plan.bte_corrupt = corrupt_p;
                if let Some((node, dim, plus, from_ns, len)) = link {
                    plan.link_down.push(LinkDownWindow {
                        node,
                        dim,
                        plus,
                        from_ns,
                        until_ns: from_ns + len,
                    });
                }
                if let Some((node, at_ns, restart_after_ns)) = crash {
                    plan.node_crash.push(NodeCrashWindow {
                        node,
                        at_ns,
                        restart_after_ns,
                    });
                }
                plan
            })
    }

    /// Run one op against a fabric, folding the full observable outcome
    /// (the "delivered-message stream") into a string for comparison.
    fn apply(f: &mut Fabric, now: Time, op: &Op) -> String {
        let nodes = f.topo.num_nodes();
        match *op {
            Op::Smsg {
                src,
                dst,
                conn,
                bytes,
            } => {
                format!(
                    "{:?}",
                    f.smsg_send(now, src % nodes, dst % nodes, conn, bytes)
                )
            }
            Op::Msgq { src, dst, bytes } => {
                format!("{:?}", f.msgq_send(now, src % nodes, dst % nodes, bytes))
            }
            Op::Rdma {
                initiator,
                remote,
                bytes,
                bte,
                put,
            } => {
                let mech = if bte { Mechanism::Bte } else { Mechanism::Fma };
                let op = if put { RdmaOp::Put } else { RdmaOp::Get };
                format!(
                    "{:?}",
                    f.rdma(now, initiator % nodes, remote % nodes, bytes, mech, op)
                )
            }
            Op::Register { node, addr, bytes } => {
                let p = f.params.clone();
                let t = f.reg_table(node % nodes);
                format!("{:?}", t.register(&p, Addr(addr), bytes))
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn lazy_matches_eager(
            dims in (1u32..6, 1u32..6, 1u32..6),
            adaptive in any::<bool>(),
            plan in plan_strategy(),
            ops in proptest::collection::vec(op_strategy(), 1..60),
        ) {
            let mut p = GeminiParams::test_small();
            p.torus_dims = dims;
            p.adaptive_routing = adaptive;
            p.fault = plan;
            let nodes = dims.0 * dims.1 * dims.2;
            let mut lazy = Fabric::new(p.clone(), nodes);
            let mut eager = Fabric::new_eager(p, nodes);

            let mut now: Time = 0;
            for (op, dt) in &ops {
                now += dt;
                let a = apply(&mut lazy, now, op);
                let b = apply(&mut eager, now, op);
                prop_assert_eq!(a, b, "outcome stream diverged at t={}", now);
            }

            // Per-link state: every directed link of the whole torus.
            for from in 0..nodes {
                for dim in 0..3u8 {
                    for plus in [false, true] {
                        let l = LinkId { from, dim, plus };
                        prop_assert_eq!(
                            lazy.links_ref().link_state(&l),
                            eager.links_ref().link_state(&l),
                            "link {:?}", l
                        );
                    }
                }
            }
            // Per-node registration books and engine state.
            for n in 0..nodes {
                let (lr, er) = (lazy.reg_table_ref(n), eager.reg_table_ref(n));
                prop_assert_eq!(lr.registered_bytes(), er.registered_bytes());
                prop_assert_eq!(lr.total_registrations, er.total_registrations);
            }
            prop_assert_eq!(lazy.total_link_bytes(), eager.total_link_bytes());
            prop_assert_eq!(
                format!("{:?}", lazy.stats),
                format!("{:?}", eager.stats)
            );
            // The whole point: the lazy fabric materialized no more than
            // the eager one.
            prop_assert!(lazy.materialized_pages() <= eager.materialized_pages());
        }
    }
}
