//! All timing and sizing constants of the Gemini model, in one serde-able
//! struct so experiments can perturb them and ablation benches can sweep
//! them.
//!
//! The defaults ([`GeminiParams::hopper`]) are calibrated against the
//! numbers the paper itself reports for Hopper (NERSC Cray XE6):
//! pure-uGNI 8-byte one-way latency ≈ 1.2 µs, SMSG limit 1024 bytes,
//! FMA/BTE crossover between 2 KB and 8 KB, peak per-link bandwidth in the
//! 6 GB/s range, and memory registration expensive enough that the naive
//! malloc+register rendezvous loses to Cray MPI (paper Fig. 6).

use crate::fault::FaultPlan;
use serde::{Deserialize, Serialize};
use sim_core::Time;

/// Which hardware unit carries an RDMA transaction (paper §II-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mechanism {
    /// Fast Memory Access: OS-bypass, lowest latency, CPU participates in
    /// pushing data through the FMA window.
    Fma,
    /// Block Transfer Engine: descriptor handed to the NIC, full offload,
    /// best overlap, higher start-up cost.
    Bte,
}

/// RDMA direction (paper §III-C uses GET-based rendezvous).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RdmaOp {
    Put,
    Get,
}

/// Complete parameter set for the fabric model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeminiParams {
    // ---- topology ----
    /// 3D torus dimensions (x, y, z) in *nodes*.
    pub torus_dims: (u32, u32, u32),
    /// Cores (PEs) per node. Hopper: 24.
    pub cores_per_node: u32,

    // ---- links / routing ----
    /// Adaptive routing: pick the least-loaded minimal dimension order per
    /// message (real Gemini routes packets adaptively; off = deterministic
    /// dimension-ordered routing).
    pub adaptive_routing: bool,
    /// Per-hop router traversal latency (ns).
    pub hop_latency: Time,
    /// Per-link bandwidth, GB/s (1e9 bytes per second).
    pub link_bw_gbs: f64,
    /// Fixed injection latency from NIC to first router (ns).
    pub injection_latency: Time,
    /// Fixed ejection latency from last router into the destination NIC (ns).
    pub ejection_latency: Time,

    // ---- SMSG ----
    /// SMSG sender CPU overhead per message (ns): building the header and
    /// storing through the FMA window.
    pub smsg_send_cpu: Time,
    /// SMSG receiver CPU overhead to dequeue one message from the mailbox,
    /// excluding the payload copy (ns).
    pub smsg_recv_cpu: Time,
    /// Per-byte CPU cost of the receiver copy out of the mailbox (ns/byte).
    pub smsg_copy_ns_per_byte: f64,
    /// NIC-side fixed latency for an SMSG (tx + rx hardware path), ns.
    pub smsg_nic_latency: Time,
    /// Mailbox credits per peer-to-peer connection (messages in flight).
    pub smsg_credits: u32,
    /// Base SMSG maximum message size (bytes) for small jobs. The effective
    /// limit shrinks as the job grows (see [`GeminiParams::smsg_max_size`]).
    pub smsg_max_size_base: u32,

    // ---- FMA ----
    /// Fixed CPU cost to start an FMA transaction (ns).
    pub fma_post_cpu: Time,
    /// FMA window chunk size (bytes); the CPU stores the payload through
    /// the window in chunks.
    pub fma_chunk_bytes: u32,
    /// CPU cost per FMA chunk (ns). This is what makes FMA lose to BTE for
    /// large transfers: the processor stays involved.
    pub fma_chunk_cpu: Time,
    /// NIC-side fixed latency for an FMA transaction (ns).
    pub fma_nic_latency: Time,
    /// Effective FMA streaming bandwidth cap, GB/s.
    pub fma_bw_gbs: f64,
    /// Largest transfer FMA is allowed to carry (hardware descriptor limit).
    pub fma_max_bytes: u64,

    // ---- BTE ----
    /// CPU cost to build + post a BTE descriptor (ns).
    pub bte_post_cpu: Time,
    /// Fixed NIC latency to launch a BTE transaction (DMA engine start), ns.
    pub bte_startup: Time,
    /// Effective BTE streaming bandwidth cap, GB/s.
    pub bte_bw_gbs: f64,

    /// Transfers at or below this size do not occupy the NIC transfer
    /// engines exclusively: Gemini moves data in small chunks/packets, so
    /// short messages interleave with bulk transfers instead of queueing
    /// behind whole-message windows. Larger transfers contend for engine
    /// bandwidth as whole windows.
    pub engine_gate_min_bytes: u64,

    // ---- GET extra cost ----
    /// Extra round-trip a GET pays: the request must travel to the remote
    /// NIC before data flows back (ns, in addition to routed path time).
    pub get_request_overhead: Time,

    // ---- memory ----
    /// malloc: base cost (ns) and per-4KiB-page cost (first touch), ns.
    pub malloc_base: Time,
    pub malloc_per_page: Time,
    /// Memory registration with the NIC (GNI_MemRegister): base + per page.
    pub reg_base: Time,
    pub reg_per_page: Time,
    /// Deregistration (GNI_MemDeregister): base + per page.
    pub dereg_base: Time,
    pub dereg_per_page: Time,
    /// Intra-node memcpy bandwidth, GB/s (single core, user space).
    pub memcpy_bw_gbs: f64,
    /// Fixed cost of any memcpy call (ns).
    pub memcpy_base: Time,

    // ---- MSGQ ----
    /// Extra per-message CPU cost of the shared message queue relative to
    /// SMSG (demultiplexing through the per-node queue).
    pub msgq_extra_cpu: Time,
    /// Extra NIC-side latency of MSGQ delivery.
    pub msgq_extra_latency: Time,
    /// Per-node MSGQ buffer (shared by all peers).
    pub msgq_bytes_per_node: u64,
    /// MSGQ shared credits per node (messages in flight to one node).
    pub msgq_credits: u32,

    // ---- CQ ----
    /// CPU cost of one GNI_CqGetEvent poll (ns), hit or miss.
    pub cq_poll_cpu: Time,

    // ---- fault injection ----
    /// Deterministic chaos schedule (inert by default; see
    /// [`crate::fault::FaultPlan`]).
    pub fault: FaultPlan,
}

pub const PAGE: u64 = 4096;

impl GeminiParams {
    /// Calibration matching the paper's Hopper numbers. See module docs.
    pub fn hopper() -> Self {
        GeminiParams {
            torus_dims: (17, 8, 24), // Hopper-like 3D torus (6384 nodes ~ 17x8x24 = 3264*? scaled)
            cores_per_node: 24,
            adaptive_routing: false,
            hop_latency: 105,
            link_bw_gbs: 6.0,
            injection_latency: 120,
            ejection_latency: 120,

            smsg_send_cpu: 180,
            smsg_recv_cpu: 150,
            smsg_copy_ns_per_byte: 0.25,
            smsg_nic_latency: 500,
            smsg_credits: 8,
            smsg_max_size_base: 1024,

            fma_post_cpu: 150,
            fma_chunk_bytes: 64,
            fma_chunk_cpu: 10,
            fma_nic_latency: 450,
            fma_bw_gbs: 4.5,
            fma_max_bytes: 1 << 20,

            bte_post_cpu: 350,
            bte_startup: 1600,
            bte_bw_gbs: 6.0,

            engine_gate_min_bytes: 4096,

            get_request_overhead: 400,

            malloc_base: 350,
            malloc_per_page: 45,
            reg_base: 1900,
            reg_per_page: 260,
            dereg_base: 1300,
            dereg_per_page: 90,
            memcpy_bw_gbs: 4.0,
            memcpy_base: 90,

            msgq_extra_cpu: 250,
            msgq_extra_latency: 600,
            msgq_bytes_per_node: 1 << 20,
            msgq_credits: 64,

            cq_poll_cpu: 60,

            fault: FaultPlan::none(),
        }
    }

    /// A small-machine variant for unit tests: 2x2x2 torus, 4 cores/node.
    pub fn test_small() -> Self {
        let mut p = Self::hopper();
        p.torus_dims = (2, 2, 2);
        p.cores_per_node = 4;
        p
    }

    /// Total node count of the torus.
    pub fn num_nodes(&self) -> u32 {
        self.torus_dims.0 * self.torus_dims.1 * self.torus_dims.2
    }

    /// Total PE count.
    pub fn num_pes(&self) -> u32 {
        self.num_nodes() * self.cores_per_node
    }

    /// Effective SMSG maximum message size for a job of `job_nodes` nodes.
    ///
    /// The paper (§III-C): "By default, the maximum SMSG message size is
    /// 1024 bytes. However, as the job size increases, this limit decreases
    /// to reduce the mailbox memory cost for each SMSG connection pair."
    pub fn smsg_max_size(&self, job_nodes: u32) -> u32 {
        let base = self.smsg_max_size_base;
        if job_nodes <= 512 {
            base
        } else if job_nodes <= 2048 {
            base / 2
        } else if job_nodes <= 8192 {
            base / 4
        } else {
            base / 8
        }
    }

    /// SMSG mailbox memory per node for a job of `job_nodes` nodes: one
    /// mailbox per peer connection (the scalability problem MSGQ solves).
    pub fn smsg_mailbox_bytes(&self, job_nodes: u32) -> u64 {
        let per_conn = self.smsg_max_size(job_nodes) as u64 * self.smsg_credits as u64;
        per_conn * (job_nodes.saturating_sub(1)) as u64
    }

    /// MSGQ memory per node: constant in the number of peers — the paper:
    /// "Setup of MSGQs is done on a per-node rather than per-peer basis,
    /// so the memory only grows as the number of nodes in the job."
    pub fn msgq_mailbox_bytes(&self, _job_nodes: u32) -> u64 {
        self.msgq_bytes_per_node
    }

    /// Number of 4 KiB pages spanned by `bytes`.
    pub fn pages(bytes: u64) -> u64 {
        bytes.div_ceil(PAGE)
    }

    /// Cost of malloc'ing a fresh buffer of `bytes` (paper's `T_malloc`).
    pub fn malloc_cost(&self, bytes: u64) -> Time {
        self.malloc_base + self.malloc_per_page * Self::pages(bytes)
    }

    /// Cost of registering `bytes` with the NIC (paper's `T_register`).
    pub fn register_cost(&self, bytes: u64) -> Time {
        self.reg_base + self.reg_per_page * Self::pages(bytes)
    }

    /// Cost of deregistering `bytes`.
    pub fn deregister_cost(&self, bytes: u64) -> Time {
        self.dereg_base + self.dereg_per_page * Self::pages(bytes)
    }

    /// Cost of an intra-node memcpy of `bytes`.
    pub fn memcpy_cost(&self, bytes: u64) -> Time {
        self.memcpy_base + sim_core::time::transfer_ns(bytes, self.memcpy_bw_gbs)
    }

    /// The mechanism a well-tuned runtime picks for `bytes` (paper §II-A:
    /// "the crossover point ... is between 2048 and 8192 bytes").
    pub fn preferred_mechanism(&self, bytes: u64) -> Mechanism {
        if bytes <= 4096 {
            Mechanism::Fma
        } else {
            Mechanism::Bte
        }
    }

    /// A lower bound on the latency of *any* cross-node effect: no uGNI
    /// transaction (SMSG, FMA, BTE, MSGQ — every path charges at least one
    /// NIC traversal plus injection, and routed paths add per-hop wire
    /// time) can touch a remote node sooner than this after it is issued.
    ///
    /// This is the raw floor; the parallel driver uses
    /// [`conservative_lookahead`](Self::conservative_lookahead).
    pub fn min_remote_latency(&self) -> Time {
        self.injection_latency
            .min(self.ejection_latency)
            .min(self.hop_latency)
            .min(self.smsg_nic_latency)
            .min(self.fma_nic_latency)
            .max(1)
    }

    /// Conservative-PDES lookahead derived from the link parameters.
    ///
    /// While a fault plan has link-down windows, adaptive routing can take
    /// unplanned detours and recovery events fire on their own schedule, so
    /// the bound is halved as a safety margin (correctness never depends on
    /// the margin — the driver asserts the bound in debug builds — but a
    /// tight bound under reroute churn buys nothing).
    pub fn conservative_lookahead(&self) -> Time {
        let base = self.min_remote_latency();
        if self.fault.link_down.is_empty() {
            base
        } else {
            (base / 2).max(1)
        }
    }
}

impl Default for GeminiParams {
    fn default() -> Self {
        Self::hopper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hopper_counts() {
        let p = GeminiParams::hopper();
        assert_eq!(p.num_nodes(), 17 * 8 * 24);
        assert_eq!(p.num_pes(), p.num_nodes() * 24);
    }

    #[test]
    fn min_remote_latency_is_the_smallest_wire_constant() {
        let p = GeminiParams::hopper();
        // hop (105) is the smallest of {injection 120, ejection 120,
        // hop 105, smsg_nic 500, fma_nic 450}.
        assert_eq!(p.min_remote_latency(), 105);
        assert_eq!(p.conservative_lookahead(), 105);
    }

    #[test]
    fn lookahead_degrades_while_a_link_down_window_is_armed() {
        let mut p = GeminiParams::hopper();
        p.fault.link_down.push(crate::fault::LinkDownWindow {
            node: 0,
            dim: 0,
            plus: true,
            from_ns: 1_000,
            until_ns: 2_000,
        });
        // Reroutes can shave the usual floor; the bound halves but never
        // reaches zero.
        assert_eq!(p.conservative_lookahead(), 52);
        p.hop_latency = 1;
        assert_eq!(p.conservative_lookahead(), 1);
    }

    #[test]
    fn smsg_limit_shrinks_with_job_size() {
        let p = GeminiParams::hopper();
        assert_eq!(p.smsg_max_size(16), 1024);
        assert_eq!(p.smsg_max_size(512), 1024);
        assert_eq!(p.smsg_max_size(1024), 512);
        assert_eq!(p.smsg_max_size(4096), 256);
        assert_eq!(p.smsg_max_size(10_000), 128);
    }

    #[test]
    fn mailbox_memory_grows_linearly_with_peers() {
        let p = GeminiParams::hopper();
        let m64 = p.smsg_mailbox_bytes(64);
        let m128 = p.smsg_mailbox_bytes(128);
        // Roughly double the peers, roughly double the memory.
        assert!(m128 > m64 && m128 < m64 * 3);
    }

    #[test]
    fn msgq_memory_constant_in_peers() {
        // The paper's §II-B scalability argument: at large node counts
        // per-peer SMSG mailboxes dwarf the shared MSGQ.
        let p = GeminiParams::hopper();
        assert_eq!(p.msgq_mailbox_bytes(64), p.msgq_mailbox_bytes(8192));
        assert!(p.smsg_mailbox_bytes(8192) > p.msgq_mailbox_bytes(8192));
        // While at tiny jobs SMSG's per-peer memory is the cheaper one.
        assert!(p.smsg_mailbox_bytes(4) < p.msgq_mailbox_bytes(4));
    }

    #[test]
    fn registration_dominates_malloc() {
        // The whole point of the memory pool (paper §IV-B): registration is
        // the expensive part.
        let p = GeminiParams::hopper();
        for kb in [4u64, 64, 512] {
            let b = kb * 1024;
            assert!(p.register_cost(b) > p.malloc_cost(b));
        }
    }

    #[test]
    fn pages_round_up() {
        assert_eq!(GeminiParams::pages(0), 0);
        assert_eq!(GeminiParams::pages(1), 1);
        assert_eq!(GeminiParams::pages(4096), 1);
        assert_eq!(GeminiParams::pages(4097), 2);
    }

    #[test]
    fn crossover_in_paper_range() {
        let p = GeminiParams::hopper();
        assert_eq!(p.preferred_mechanism(1024), Mechanism::Fma);
        assert_eq!(p.preferred_mechanism(2048), Mechanism::Fma);
        assert_eq!(p.preferred_mechanism(8192), Mechanism::Bte);
        assert_eq!(p.preferred_mechanism(1 << 20), Mechanism::Bte);
    }

    #[test]
    fn test_small_is_small() {
        let p = GeminiParams::test_small();
        assert_eq!(p.num_nodes(), 8);
        assert_eq!(p.num_pes(), 32);
    }
}
