//! Double-run bit-identity at the `Cluster` level, fault-free.
//!
//! The chaos suite already proves replay under an active fault plan; this
//! file is the determinism backstop for the *normal* paths the lint pass
//! guards — in particular the registration-cache invalidation walk in
//! `gemini-net::reg`, which iterates its key set (a `BTreeMap`, enforced
//! by `lint-pass`: a `HashMap` there would reshuffle deregistration order
//! between runs and shift every downstream virtual timestamp).

use charm_apps::jacobi2d::{run_jacobi, JacobiConfig};
use charm_apps::pingpong::{charm_bandwidth, charm_one_way};
use charm_apps::LayerKind;

fn layers() -> Vec<LayerKind> {
    vec![LayerKind::ugni(), LayerKind::mpi()]
}

#[test]
fn mixed_size_pingpong_replays_bit_for_bit() {
    // Sizes straddle the eager/rendezvous switch, so both the SMSG path
    // and the registration cache (acquire + invalidate on free) run.
    for layer in layers() {
        for &(bytes, persistent) in &[
            (64usize, false),
            (8192, false),
            (65536, false),
            (65536, true),
        ] {
            let a = charm_one_way(&layer, 1, bytes, 50, persistent);
            let b = charm_one_way(&layer, 1, bytes, 50, persistent);
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{} pingpong ({bytes}B, persistent={persistent}) diverged across runs",
                layer.name()
            );
        }
    }
}

#[test]
fn bandwidth_window_replays_bit_for_bit() {
    // Windowed rendezvous traffic churns many concurrent registrations,
    // the workload most sensitive to map-iteration order.
    for layer in layers() {
        let a = charm_bandwidth(&layer, 65536, 8, 20);
        let b = charm_bandwidth(&layer, 65536, 8, 20);
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{} bandwidth run diverged across runs",
            layer.name()
        );
    }
}

#[test]
fn jacobi_replays_bit_for_bit_without_faults() {
    let cfg = JacobiConfig {
        n: 20,
        blocks: 4,
        iters: 10,
    };
    for layer in layers() {
        let a = run_jacobi(&layer, 8, 4, &cfg);
        let b = run_jacobi(&layer, 8, 4, &cfg);
        assert_eq!(
            (a.time_ns, a.residual.to_bits(), a.iterations_run),
            (b.time_ns, b.residual.to_bits(), b.iterations_run),
            "{} jacobi diverged across runs",
            layer.name()
        );
        assert_eq!(a.grid, b.grid, "{} grids diverged", layer.name());
    }
}
