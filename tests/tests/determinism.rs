//! Double-run bit-identity at the `Cluster` level, fault-free.
//!
//! The chaos suite already proves replay under an active fault plan; this
//! file is the determinism backstop for the *normal* paths the lint pass
//! guards — in particular the registration-cache invalidation walk in
//! `gemini-net::reg`, which iterates its key set (a `BTreeMap`, enforced
//! by `lint-pass`: a `HashMap` there would reshuffle deregistration order
//! between runs and shift every downstream virtual timestamp).

use charm_apps::jacobi2d::{run_jacobi, JacobiConfig};
use charm_apps::pingpong::{charm_bandwidth, charm_one_way};
use charm_apps::LayerKind;
use proptest::prelude::*;
use sim_core::queue::{HeapQueue, TwoLevelQueue};

fn layers() -> Vec<LayerKind> {
    vec![LayerKind::ugni(), LayerKind::mpi()]
}

#[test]
fn mixed_size_pingpong_replays_bit_for_bit() {
    // Sizes straddle the eager/rendezvous switch, so both the SMSG path
    // and the registration cache (acquire + invalidate on free) run.
    for layer in layers() {
        for &(bytes, persistent) in &[
            (64usize, false),
            (8192, false),
            (65536, false),
            (65536, true),
        ] {
            let a = charm_one_way(&layer, 1, bytes, 50, persistent);
            let b = charm_one_way(&layer, 1, bytes, 50, persistent);
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{} pingpong ({bytes}B, persistent={persistent}) diverged across runs",
                layer.name()
            );
        }
    }
}

#[test]
fn bandwidth_window_replays_bit_for_bit() {
    // Windowed rendezvous traffic churns many concurrent registrations,
    // the workload most sensitive to map-iteration order.
    for layer in layers() {
        let a = charm_bandwidth(&layer, 65536, 8, 20);
        let b = charm_bandwidth(&layer, 65536, 8, 20);
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{} bandwidth run diverged across runs",
            layer.name()
        );
    }
}

/// The two-level queue must pop the exact sequence the legacy heap pops —
/// this is the engine-level guarantee behind every pinned virtual time in
/// this file. A deterministic trace shaped like real simulator traffic:
/// bursts of same-time events (scheduler cascades), short hops (protocol
/// charges), and long timer jumps (retry horizons).
#[test]
fn two_level_queue_matches_legacy_heap_on_simulator_shaped_trace() {
    let mut heap = HeapQueue::new();
    let mut two = TwoLevelQueue::new();
    let mut clock: u64 = 0;
    let mut id: u32 = 0;
    let mut state: u64 = 0x2545_F491_4F6C_DD1D;
    let mut next = || {
        // xorshift64*: deterministic, no external RNG needed here.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    for round in 0..2000 {
        let r = next();
        match r % 10 {
            // Same-time cascade: several events at one instant must pop
            // in push order.
            0 => {
                for _ in 0..(r / 10 % 5 + 2) {
                    heap.push(clock, id);
                    two.push(clock, id);
                    id += 1;
                }
            }
            // Short protocol hop.
            1..=5 => {
                let t = clock + r % 2048;
                heap.push(t, id);
                two.push(t, id);
                id += 1;
            }
            // Long timer: far beyond the near horizon.
            6 => {
                let t = clock + 100_000 + r % 1_000_000;
                heap.push(t, id);
                two.push(t, id);
                id += 1;
            }
            // Pop and advance the clock.
            _ => {
                let a = heap.pop();
                let b = two.pop();
                assert_eq!(a, b, "pop diverged at round {round}");
                if let Some((t, _)) = a {
                    clock = clock.max(t);
                }
            }
        }
        assert_eq!(heap.len(), two.len());
        assert_eq!(heap.peek_time(), two.peek_time());
    }
    loop {
        let a = heap.pop();
        let b = two.pop();
        assert_eq!(a, b, "drain diverged");
        if a.is_none() {
            break;
        }
    }
}

proptest! {
    /// Random (time, seq) interleavings: the two-level queue pops a
    /// FIFO-stable sort regardless of push pattern, and agrees with the
    /// legacy heap at every step.
    #[test]
    fn two_level_queue_pops_fifo_stable(
        ops in proptest::collection::vec(
            proptest::option::of(0u64..500_000), 0..300)
    ) {
        let mut heap = HeapQueue::new();
        let mut two = TwoLevelQueue::new();
        let mut id = 0u32;
        for op in ops {
            match op {
                Some(t) => {
                    heap.push(t, id);
                    two.push(t, id);
                    id += 1;
                }
                None => {
                    prop_assert_eq!(heap.pop(), two.pop());
                }
            }
        }
        // Final drain (no more pushes): what comes out must be a
        // FIFO-stable sort — times never decrease, ties in push order.
        let mut drained: Vec<(u64, u32)> = Vec::new();
        while let Some(b) = two.pop() {
            prop_assert_eq!(heap.pop(), Some(b));
            drained.push(b);
        }
        prop_assert_eq!(heap.pop(), None);
        for w in drained.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO violated at t={}", w[0].0);
            }
        }
    }
}

/// The wallclock harness's pinned virtual end times hold: engine fast-path
/// work (queue, zero-copy wire buffers, trace buffering) must never move
/// virtual time. Runs the quick suite, same as the CI wallclock job.
#[test]
fn wallclock_quick_suite_virtual_times_match_pins() {
    let suite = charm_bench::wallclock_suite(&charm_bench::Effort::quick());
    let drifted = suite.drifted();
    assert!(
        drifted.is_empty(),
        "virtual-time drift: {:?}",
        drifted
            .iter()
            .map(|r| format!(
                "{}/{}: {} != pinned {:?}",
                r.name, r.layer, r.virtual_end_ns, r.pinned_end_ns
            ))
            .collect::<Vec<_>>()
    );
}

#[test]
fn jacobi_replays_bit_for_bit_without_faults() {
    let cfg = JacobiConfig {
        n: 20,
        blocks: 4,
        iters: 10,
    };
    for layer in layers() {
        let a = run_jacobi(&layer, 8, 4, &cfg);
        let b = run_jacobi(&layer, 8, 4, &cfg);
        assert_eq!(
            (a.time_ns, a.residual.to_bits(), a.iterations_run),
            (b.time_ns, b.residual.to_bits(), b.iterations_run),
            "{} jacobi diverged across runs",
            layer.name()
        );
        assert_eq!(a.grid, b.grid, "{} grids diverged", layer.name());
    }
}
