//! Crash-recovery acceptance: a node dies mid-run (and maybe restarts),
//! the heartbeat detector declares it, buddy checkpoints restore it, and
//! the application finishes with *bitwise-identical results* to the
//! fault-free run — recovery may cost virtual time, never correctness.
//! Every crash run must also be bit-replayable, and the parallel driver
//! must agree with the sequential engine to the bit.

use charm_apps::jacobi2d::{run_jacobi, run_jacobi_ft, JacobiConfig, JacobiResult};
use charm_apps::pingpong::run_pingpong_ft;
use charm_apps::LayerKind;
use charm_rt::prelude::{
    set_default_handoff_min_events, set_default_threads_forced, FtConfig, FtReport,
};
use gemini_net::{FaultPlan, LinkDownWindow, NodeCrashWindow};

/// One node-1 crash at 80us. `restart_after` picks between restart-in-
/// place and gone-for-good (redistribute) recovery.
fn crash_plan(restart_after: Option<sim_core::Time>) -> FaultPlan {
    let mut plan = FaultPlan::default();
    plan.node_crash.push(NodeCrashWindow {
        node: 1,
        at_ns: 80_000,
        restart_after_ns: restart_after,
    });
    plan
}

/// Detector sized for this machine: jacobi saturates PEs in ~30us bursts
/// and the layer's first-touch pool registration stalls each PE ~22us
/// once, so the suspicion timeout must sit well above both.
fn ft_config() -> FtConfig {
    FtConfig {
        hb_period: 20_000,
        hb_timeout: 150_000,
        ckpt_period: 60_000,
        ..FtConfig::default()
    }
}

fn jacobi_cfg() -> JacobiConfig {
    JacobiConfig {
        n: 24,
        blocks: 4,
        iters: 20,
    }
}

fn crashed_jacobi(restart_after: Option<sim_core::Time>) -> (JacobiResult, FtReport) {
    let layer = LayerKind::ugni().with_fault(crash_plan(restart_after));
    run_jacobi_ft(&layer, 8, 4, &jacobi_cfg(), ft_config())
}

#[test]
fn jacobi_crash_restart_matches_fault_free() {
    let clean = run_jacobi(&LayerKind::ugni(), 8, 4, &jacobi_cfg());
    let (r, ft) = crashed_jacobi(Some(40_000));
    assert_eq!(ft.recoveries, 1, "the crash was never recovered");
    assert_eq!(ft.epoch, 1);
    assert!(ft.ckpts >= 1, "no checkpoint wave completed");
    assert_eq!(r.iterations_run, 20);
    assert_eq!(r.grid, clean.grid, "recovery perturbed the arithmetic");
    assert_eq!(r.residual.to_bits(), clean.residual.to_bits());
    assert!(
        r.time_ns > clean.time_ns,
        "rollback-replay cost no virtual time? {} vs {}",
        r.time_ns,
        clean.time_ns
    );
}

#[test]
fn jacobi_crash_redistribute_matches_fault_free() {
    // Gone for good: node 1's blocks fold onto the buddies holding their
    // checkpoint copies, and the shrunken membership still finishes with
    // the exact fault-free grid.
    let clean = run_jacobi(&LayerKind::ugni(), 8, 4, &jacobi_cfg());
    let (r, ft) = crashed_jacobi(None);
    assert_eq!(ft.recoveries, 1);
    assert_eq!(r.iterations_run, 20);
    assert_eq!(r.grid, clean.grid, "redistribute perturbed the arithmetic");
    assert_eq!(r.residual.to_bits(), clean.residual.to_bits());
}

#[test]
fn crash_runs_are_bit_replayable() {
    // Same plan, same config, run twice: every virtual timestamp and
    // counter must repeat exactly — crash recovery is deterministic.
    for restart in [Some(40_000), None] {
        let (a, fa) = crashed_jacobi(restart);
        let (b, fb) = crashed_jacobi(restart);
        assert_eq!(a.time_ns, b.time_ns, "restart={restart:?}");
        assert_eq!(a.events, b.events, "restart={restart:?}");
        assert_eq!(a.grid, b.grid, "restart={restart:?}");
        assert_eq!((fa.ckpts, fa.recoveries), (fb.ckpts, fb.recoveries));
    }
}

/// Thread counts for the parallel leg; `CHARM_TEST_THREADS=N` (CI's
/// matrix legs) narrows the sweep to one count.
fn thread_counts() -> Vec<u32> {
    match std::env::var("CHARM_TEST_THREADS") {
        Ok(v) => vec![v.parse().expect("CHARM_TEST_THREADS must be a number")],
        Err(_) => vec![2, 4],
    }
}

#[test]
fn crash_identical_under_parallel_driver_threads() {
    // The parallel driver forces crash-window runs through the serial
    // engine (node death is a global membership edge, not a per-partition
    // event), so any thread count must reproduce the sequential run to
    // the bit.
    set_default_handoff_min_events(0);
    set_default_threads_forced(1);
    let (seq, seq_ft) = crashed_jacobi(Some(40_000));
    for threads in thread_counts() {
        set_default_threads_forced(threads);
        let (par, par_ft) = crashed_jacobi(Some(40_000));
        set_default_threads_forced(1);
        assert_eq!(seq.time_ns, par.time_ns, "threads={threads}");
        assert_eq!(seq.events, par.events, "threads={threads}");
        assert_eq!(seq.grid, par.grid, "threads={threads}");
        assert_eq!(seq_ft, par_ft, "threads={threads}");
    }
}

#[test]
fn crash_inside_link_down_window_still_recovers() {
    // The node dies while one of node 0's links is already out: detection
    // traffic reroutes around the outage, and recovery still converges on
    // the fault-free answer.
    let mut plan = crash_plan(Some(40_000));
    plan.link_down.push(LinkDownWindow {
        node: 0,
        dim: 0,
        plus: true,
        from_ns: 60_000,
        until_ns: 160_000,
    });
    let layer = LayerKind::ugni().with_fault(plan);
    let (r, ft) = run_jacobi_ft(&layer, 8, 4, &jacobi_cfg(), ft_config());
    let clean = run_jacobi(&LayerKind::ugni(), 8, 4, &jacobi_cfg());
    assert_eq!(ft.recoveries, 1);
    assert_eq!(r.iterations_run, 20);
    assert_eq!(r.grid, clean.grid);
}

#[test]
fn pingpong_crash_is_exactly_once() {
    // Both endpoints count every round exactly once across the crash:
    // rollback-replay must neither lose nor double a message.
    for restart in [Some(30_000), None] {
        let mut plan = FaultPlan::default();
        plan.node_crash.push(NodeCrashWindow {
            node: 1,
            at_ns: 50_000,
            restart_after_ns: restart,
        });
        let layer = LayerKind::ugni().with_fault(plan);
        let (c0, cp, end, ft) = run_pingpong_ft(&layer, 4, 2, 256, 100, ft_config());
        assert_eq!(ft.recoveries, 1, "restart={restart:?}");
        assert_eq!((c0, cp), (100, 100), "restart={restart:?}");
        assert!(end > 0, "restart={restart:?}");
    }
}
