//! Chaos-mode acceptance: with an active fault plan (message drops,
//! corrupted completions, a mid-run link outage, a forced CQ overrun) the
//! full stack must still run every protocol to completion with zero panics
//! and *bitwise-identical application results* — recovery may cost time,
//! never correctness. And with the inert plan, nothing may change at all.

use charm_apps::jacobi2d::{jacobi_sequential, run_jacobi, JacobiConfig};
use charm_apps::pingpong::charm_one_way;
use charm_apps::LayerKind;
use gemini_net::{FaultPlan, LinkDownWindow};

/// The acceptance plan from the issue: 1e-3 drop probability everywhere,
/// corrupted completions, one mid-run link-down window, one forced CQ
/// overrun.
fn chaos_plan() -> FaultPlan {
    let mut f = FaultPlan::uniform_drop(0xC4A05, 1e-3);
    f.smsg_corrupt = 1e-3;
    f.fma_corrupt = 1e-3;
    f.bte_corrupt = 1e-3;
    f.force_cq_overrun_at = Some(100_000);
    f.link_down.push(LinkDownWindow {
        node: 0,
        dim: 0,
        plus: true,
        from_ns: 200_000,
        until_ns: 600_000,
    });
    f
}

/// A heavier plan so short runs are guaranteed to actually exercise the
/// recovery paths, not just have them armed.
fn heavy_plan() -> FaultPlan {
    let mut f = FaultPlan::uniform_drop(0xC4A06, 0.02);
    f.smsg_corrupt = 0.02;
    f.fma_corrupt = 0.02;
    f.bte_corrupt = 0.02;
    f
}

fn chaos_layers() -> Vec<LayerKind> {
    vec![
        LayerKind::ugni().with_fault(chaos_plan()),
        LayerKind::mpi().with_fault(chaos_plan()),
    ]
}

#[test]
fn pingpong_completes_under_chaos_on_both_layers() {
    for layer in chaos_layers() {
        // Small (SMSG/eager), large (rendezvous), persistent (PUT).
        for &(bytes, persistent) in &[(64usize, false), (65536, false), (65536, true)] {
            let lat = charm_one_way(&layer, 1, bytes, 200, persistent);
            assert!(
                lat > 0.0,
                "{} pingpong ({bytes}B, persistent={persistent}) did not finish",
                layer.name()
            );
        }
    }
}

#[test]
fn jacobi_bitwise_identical_under_chaos() {
    let cfg = JacobiConfig {
        n: 20,
        blocks: 4,
        iters: 15,
    };
    let (seq, _) = jacobi_sequential(20, 15);
    for layer in chaos_layers() {
        let r = run_jacobi(&layer, 8, 4, &cfg);
        assert_eq!(
            r.grid,
            seq,
            "chaos perturbed jacobi results on {}",
            layer.name()
        );
    }
    // Heavier faults: recovery paths definitely fire, results still exact.
    for layer in [
        LayerKind::ugni().with_fault(heavy_plan()),
        LayerKind::mpi().with_fault(heavy_plan()),
    ] {
        let r = run_jacobi(&layer, 8, 4, &cfg);
        assert_eq!(
            r.grid,
            seq,
            "heavy chaos perturbed jacobi results on {}",
            layer.name()
        );
    }
}

#[test]
fn chaos_runs_replay_bit_for_bit() {
    let cfg = JacobiConfig {
        n: 20,
        blocks: 4,
        iters: 10,
    };
    for layer in chaos_layers() {
        let a = run_jacobi(&layer, 8, 4, &cfg);
        let b = run_jacobi(&layer, 8, 4, &cfg);
        assert_eq!(
            (a.time_ns, a.residual, a.grid),
            (b.time_ns, b.residual, b.grid),
            "same seed + same plan diverged on {}",
            layer.name()
        );
    }
}

#[test]
fn inert_plan_changes_nothing() {
    // FaultPlan::none() must be invisible: identical virtual end times to
    // a layer that never heard of fault injection.
    let cfg = JacobiConfig {
        n: 20,
        blocks: 4,
        iters: 10,
    };
    for (plain, gated, pinned) in [
        (
            LayerKind::ugni(),
            LayerKind::ugni().with_fault(FaultPlan::none()),
            242_228,
        ),
        (
            LayerKind::mpi(),
            LayerKind::mpi().with_fault(FaultPlan::none()),
            314_200,
        ),
    ] {
        let a = run_jacobi(&plain, 8, 4, &cfg);
        let b = run_jacobi(&gated, 8, 4, &cfg);
        assert_eq!(
            a.time_ns,
            b.time_ns,
            "inert plan perturbed {}",
            plain.name()
        );
        assert_eq!(a.grid, b.grid);
        // Pinned virtual end-times. These match the `verify`-off build
        // bit for bit (the contract checker is purely observational), so
        // any drift here means the figure pipeline's numbers moved too.
        assert_eq!(
            a.time_ns,
            pinned,
            "virtual end time drifted on {}",
            plain.name()
        );
    }
}

#[test]
fn chaos_recovery_costs_time_but_not_results() {
    let cfg = JacobiConfig {
        n: 20,
        blocks: 4,
        iters: 15,
    };
    let clean = run_jacobi(&LayerKind::ugni(), 8, 4, &cfg);
    let chaotic = run_jacobi(&LayerKind::ugni().with_fault(heavy_plan()), 8, 4, &cfg);
    assert_eq!(clean.grid, chaotic.grid);
    assert!(
        chaotic.time_ns > clean.time_ns,
        "2% fault rates should cost time: clean {} vs chaos {}",
        clean.time_ns,
        chaotic.time_ns
    );
}
