//! Paper-claim regression tests: the quantitative statements from the
//! abstract and §V, checked end to end against the simulated machine at
//! reduced (CI-friendly) scale. These are the "shape" assertions of
//! DESIGN.md §4.

use charm_apps::kneighbor::kneighbor_iteration_time;
use charm_apps::one_to_all::one_to_all_latency;
use charm_apps::pingpong::{charm_one_way, raw_mpi_one_way, raw_ugni_one_way};
use charm_apps::LayerKind;
use gemini_net::GeminiParams;
use mpi_sim::MpiConfig;

/// Abstract: "the uGNI-based runtime system outperforms the MPI-based
/// implementation by up to 50% in terms of message latency."
#[test]
fn up_to_fifty_percent_latency_win() {
    let mut best = 0.0f64;
    for bytes in [2_048usize, 8_192, 65_536, 262_144] {
        let u = charm_one_way(&LayerKind::ugni(), 1, bytes, 30, false);
        let m = charm_one_way(&LayerKind::mpi(), 1, bytes, 30, false);
        best = best.max(1.0 - u / m);
    }
    assert!(
        best >= 0.30,
        "expected a large latency win somewhere; best was {:.0}%",
        best * 100.0
    );
}

/// §V-A: "a latency as low as 1.6us for an 8-byte message, which is close
/// to the case with the pure uGNI (1.2us)".
#[test]
fn small_message_absolute_latencies() {
    let pure = raw_ugni_one_way(&GeminiParams::hopper(), 8) as f64 / 1000.0;
    let charm = charm_one_way(&LayerKind::ugni(), 1, 8, 100, false) / 1000.0;
    assert!((0.9..1.6).contains(&pure), "pure uGNI 8B {pure:.2}us");
    assert!((1.2..2.4).contains(&charm), "charm uGNI 8B {charm:.2}us");
    assert!(charm > pure, "runtime overhead must be visible");
}

/// §V-A: between 512B and 1024B there is a jump in uGNI-based CHARM++
/// (switch to the rendezvous protocol) while pure uGNI grows slowly.
#[test]
fn smsg_to_rendezvous_jump() {
    let at_512 = charm_one_way(&LayerKind::ugni(), 1, 512, 40, false);
    let at_2048 = charm_one_way(&LayerKind::ugni(), 1, 2048, 40, false);
    assert!(
        at_2048 > at_512 * 1.5,
        "expected a protocol-switch jump: {at_512:.0}ns -> {at_2048:.0}ns"
    );
}

/// §V-A: "if a same user buffer is used in both sending and receiving,
/// the MPI performance is much better than the case of using different
/// buffers" (large messages only).
#[test]
fn mpi_buffer_reuse_effect() {
    let cfg = MpiConfig::default();
    let same = raw_mpi_one_way(&cfg, 262_144, 12, true);
    let diff = raw_mpi_one_way(&cfg, 262_144, 12, false);
    assert!(
        same * 1.15 < diff,
        "same-buffer rendezvous should win clearly: {same:.0} vs {diff:.0}"
    );
}

/// §V-B: kNeighbor — "The latency on uGNI-based CHARM++ is only half of
/// that on the MPI-based CHARM++" despite similar ping-pong latency.
#[test]
fn kneighbor_concurrency_gap_exceeds_pingpong_gap() {
    let bytes = 262_144;
    let pp_u = charm_one_way(&LayerKind::ugni(), 1, bytes, 20, false);
    let pp_m = charm_one_way(&LayerKind::mpi(), 1, bytes, 20, false);
    let kn_u = kneighbor_iteration_time(&LayerKind::ugni(), 3, 1, 1, bytes, 8);
    let kn_m = kneighbor_iteration_time(&LayerKind::mpi(), 3, 1, 1, bytes, 8);
    let pp_ratio = pp_m / pp_u;
    let kn_ratio = kn_m / kn_u;
    assert!(
        kn_ratio > pp_ratio,
        "concurrency must widen the gap: pingpong x{pp_ratio:.2}, kNeighbor x{kn_ratio:.2}"
    );
    assert!(kn_ratio >= 1.8, "paper reports ~2x; got x{kn_ratio:.2}");
}

/// §V-A Fig. 9c: one-to-all, small messages — "uGNI-based CHARM++
/// outperforms MPI-based CHARM++ by a large margin ... the gap closes as
/// message sizes increase".
#[test]
fn one_to_all_margin_and_closing_gap() {
    let small_u = one_to_all_latency(&LayerKind::ugni(), 16, 1, 64, 5);
    let small_m = one_to_all_latency(&LayerKind::mpi(), 16, 1, 64, 5);
    let large_u = one_to_all_latency(&LayerKind::ugni(), 16, 1, 1 << 20, 3);
    let large_m = one_to_all_latency(&LayerKind::mpi(), 16, 1, 1 << 20, 3);
    assert!(small_u * 1.3 < small_m, "{small_u:.0} vs {small_m:.0}");
    assert!(large_m / large_u < small_m / small_u, "gap should close");
}

/// §II-A: "The crossover point between FMA and BTE for most application
/// is between 2048 and 8192 bytes".
#[test]
fn fma_bte_crossover_band() {
    use charm_apps::pingpong::raw_transaction_latency;
    use gemini_net::{Mechanism, RdmaOp};
    let p = GeminiParams::hopper();
    let mut crossover = None;
    for exp in 6..22 {
        let b = 1u64 << exp;
        let fma = raw_transaction_latency(&p, b, Mechanism::Fma, RdmaOp::Put);
        let bte = raw_transaction_latency(&p, b, Mechanism::Bte, RdmaOp::Put);
        if bte <= fma {
            crossover = Some(b);
            break;
        }
    }
    let c = crossover.expect("no crossover");
    assert!(
        (2048..=8192).contains(&c),
        "crossover {c} outside the paper's band"
    );
}
