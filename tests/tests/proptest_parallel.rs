//! Property-based validation of the conservative parallel driver's
//! lookahead contract: over random torus topologies, fault plans, and
//! app-shaped traffic mixes, no cross-partition event may ever be
//! scheduled closer than the derived lookahead — the driver asserts the
//! bound on every cross-partition push in debug builds (which is what
//! `cargo test` runs), so simply completing a parallel run under this
//! traffic is the property. Each case additionally cross-checks the
//! parallel run against the sequential engine bit for bit, making this a
//! randomized extension of the pinned differential suite.

use bytes::Bytes;
use charm_apps::LayerKind;
use charm_rt::prelude::{
    set_default_batch_windows, set_default_handoff_min_events, set_default_threads_forced,
    ClusterStats,
};
use gemini_net::{FaultPlan, LinkDownWindow};
use lrts_ugni::UgniConfig;
use proptest::prelude::*;

/// App-shaped traffic: a scatter burst from PE 0 (mixed sizes straddling
/// the eager/rendezvous switch), then a neighbor-ring echo wave — enough
/// fan-out to keep several partitions busy inside one window.
fn traffic(layer: &LayerKind, pes: u32, cores: u32, sizes: &[usize]) -> (u64, u64, u64) {
    let (end, _, _, seen, xor) = traffic_full(layer, pes, cores, sizes, false);
    (end, seen, xor)
}

/// Full-observability variant: also returns the aggregate stats and (when
/// `traced`) the exported per-PE segment log, so callers can assert the
/// engines agree on every observable byte, not just end time and payload
/// digests.
fn traffic_full(
    layer: &LayerKind,
    pes: u32,
    cores: u32,
    sizes: &[usize],
    traced: bool,
) -> (u64, ClusterStats, String, u64, u64) {
    let mut c = layer.cluster(pes, cores);
    if traced {
        c.enable_trace_log();
    }
    #[derive(Default)]
    struct St {
        seen: u64,
        xor: u64,
    }
    c.init_user(|_| St::default());
    let echo = c.register_handler(|ctx, env| {
        let st = ctx.user::<St>();
        st.seen += 1;
        for (i, b) in env.payload.iter().enumerate() {
            st.xor ^= (*b as u64) << (8 * (i % 8));
        }
        ctx.charge(200);
    });
    let recv = c.register_handler(move |ctx, env| {
        let st = ctx.user::<St>();
        st.seen += 1;
        for (i, b) in env.payload.iter().enumerate() {
            st.xor ^= (*b as u64) << (8 * (i % 8));
        }
        // Ring hop: bounce a small echo to the next PE over.
        let dst = (ctx.pe() + 1) % ctx.num_pes();
        ctx.send(dst, echo, env.payload.slice(0..env.payload.len().min(32)));
    });
    let sizes_owned: Vec<usize> = sizes.to_vec();
    let kick = c.register_handler(move |ctx, _| {
        for (i, &s) in sizes_owned.iter().enumerate() {
            let dst = 1 + (i as u32 % (ctx.num_pes() - 1));
            let payload: Vec<u8> = (0..s).map(|j| ((i * 131 + j * 7) % 251) as u8).collect();
            ctx.send(dst, recv, Bytes::from(payload));
        }
    });
    c.inject(0, 0, kick, Bytes::new());
    let rep = c.run();
    let mut xor = 0u64;
    let mut seen = 0u64;
    for pe in 0..pes {
        let st = c.user::<St>(pe);
        seen += st.seen;
        xor ^= st.xor;
    }
    let log = if traced {
        c.trace().export_log()
    } else {
        String::new()
    };
    (rep.end_time, rep.stats, log, seen, xor)
}

fn make_layer(
    dims: (u32, u32, u32),
    cores: u32,
    drop_p: f64,
    down: Option<(u32, u8, u64)>,
) -> (LayerKind, u32) {
    let mut cfg = UgniConfig::optimized();
    cfg.params.torus_dims = dims;
    cfg.params.cores_per_node = cores;
    let mut fault = if drop_p > 0.0 {
        FaultPlan::uniform_drop(0xBEEF, drop_p)
    } else {
        FaultPlan::none()
    };
    if let Some((node, dim, from)) = down {
        fault.link_down.push(LinkDownWindow {
            node: node % cfg.params.num_nodes(),
            dim: dim % 3,
            plus: true,
            from_ns: from,
            until_ns: from + 300_000,
        });
    }
    cfg.params.fault = fault;
    let pes = cfg.params.num_pes();
    (LayerKind::Ugni(cfg), pes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random topology + random traffic, fault-free: the parallel run
    /// must complete without tripping the lookahead assert and land on
    /// the sequential timestamps exactly.
    #[test]
    fn lookahead_bound_holds_on_random_topologies(
        dx in 2u32..4, dy in 1u32..3, dz in 1u32..3,
        cores in 1u32..4,
        sizes in proptest::collection::vec(1usize..100_000, 2..10),
        threads in 2u32..6,
    ) {
        let (layer, pes) = make_layer((dx, dy, dz), cores, 0.0, None);
        prop_assume!(pes > 2);
        set_default_handoff_min_events(0);
        set_default_threads_forced(1);
        let seq = traffic(&layer, pes, cores, &sizes);
        set_default_threads_forced(threads);
        let par = traffic(&layer, pes, cores, &sizes);
        set_default_threads_forced(1);
        prop_assert_eq!(seq, par, "threads={} diverged", threads);
    }

    /// Same property under an active fault plan: drops force retries and
    /// a link-down window degrades the derived lookahead mid-run.
    #[test]
    fn lookahead_bound_holds_under_fault_plans(
        dx in 2u32..4, dy in 1u32..3,
        cores in 1u32..3,
        drop_p in 0.0f64..0.01,
        down_node in 0u32..8, down_dim in 0u8..3,
        down_from in 10_000u64..200_000,
        sizes in proptest::collection::vec(1usize..60_000, 2..8),
    ) {
        let (layer, pes) =
            make_layer((dx, dy, 1), cores, drop_p, Some((down_node, down_dim, down_from)));
        prop_assume!(pes > 2);
        set_default_handoff_min_events(0);
        set_default_threads_forced(1);
        let seq = traffic(&layer, pes, cores, &sizes);
        set_default_threads_forced(4);
        let par = traffic(&layer, pes, cores, &sizes);
        set_default_threads_forced(1);
        prop_assert_eq!(seq, par, "faulty parallel run diverged");
    }

    /// Window batching is a pure wallclock optimization: for any batch
    /// size k, the parallel engine must produce bit-identical end times,
    /// aggregate stats, and trace bytes versus both the unbatched (k=1)
    /// parallel engine and the sequential engine. Fault plans are in
    /// scope — dropped packets and link-down windows reshape the event
    /// mix mid-batch.
    #[test]
    fn window_batching_is_invisible(
        dx in 2u32..4, dy in 1u32..3, dz in 1u32..3,
        cores in 1u32..3,
        drop_p in 0.0f64..0.01,
        sizes in proptest::collection::vec(1usize..60_000, 2..8),
        threads in 2u32..6,
        k in 1u32..9,
    ) {
        let (layer, pes) = make_layer((dx, dy, dz), cores, drop_p, None);
        prop_assume!(pes > 2);
        set_default_handoff_min_events(0);
        set_default_threads_forced(1);
        let seq = traffic_full(&layer, pes, cores, &sizes, true);
        set_default_threads_forced(threads);
        set_default_batch_windows(1);
        let unbatched = traffic_full(&layer, pes, cores, &sizes, true);
        set_default_batch_windows(k);
        let batched = traffic_full(&layer, pes, cores, &sizes, true);
        set_default_batch_windows(4);
        set_default_threads_forced(1);
        prop_assert_eq!(&seq, &unbatched, "unbatched parallel diverged from sequential");
        prop_assert_eq!(&unbatched, &batched, "batch_windows={} diverged", k);
    }
}
