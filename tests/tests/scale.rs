//! Machine-size scaling: the flyweight/lazy machinery (pe_table.rs,
//! `LazyVec`/`LazySlab`, lazy CQs/pools, paged traces — DESIGN.md §13)
//! must keep Hopper-and-beyond PE counts a non-problem, without moving a
//! single virtual timestamp at any size.
//!
//! Three angles:
//!
//! * the small pinned shapes (the wallclock suite's quick rows) stay
//!   bit-identical — scaling work must not disturb the engine;
//! * a Hopper-sized (153,216-PE) and a mebi-PE machine run sparse
//!   workloads to pinned virtual end times in debug mode, proving the
//!   release-only `scale` bench rows are not an optimizer artifact;
//! * memory stays proportional to *touched* state: untouched PEs
//!   materialize nothing, and the whole test process stays under a
//!   peak-RSS ceiling (`VmHWM`) that an O(num_pes) eager regression
//!   would blow through.

use charm_apps::LayerKind;
use charm_bench::scale::{self, sparse_relay, HOPPER_CORES_PER_NODE, HOPPER_PES, MILLION_PES};
use charm_bench::Effort;

/// Whole-process peak-RSS ceiling, bytes. `VmHWM` is process-wide and the
/// harness runs this binary's tests concurrently, so the ceiling covers
/// everything here together: measured peak is ~200 MB, while eagerly
/// materializing the mebi-PE machine's per-PE state alone would add
/// ~400 MB more. A bust means construction went O(num_pes) somewhere.
const PROCESS_RSS_CEILING: u64 = 768 * 1024 * 1024;

fn assert_under_rss_ceiling(context: &str) {
    let peak = scale::peak_rss_bytes();
    if peak == 0 {
        return; // no /proc/self/status on this platform
    }
    assert!(
        peak <= PROCESS_RSS_CEILING,
        "{context}: process peak RSS {peak} bytes exceeds ceiling {PROCESS_RSS_CEILING}"
    );
}

/// The wallclock suite's pinned quick rows (pingpong, bandwidth, jacobi
/// seed/inert/full, kneighbor on both layers) must hold bit-for-bit in
/// debug builds too — the same fingerprints `--bin wallclock` gates on.
#[test]
fn pinned_quick_shapes_stay_bit_identical() {
    let suite = charm_bench::wallclock_suite(&Effort::quick());
    let drifted: Vec<String> = suite
        .drifted()
        .iter()
        .map(|r| {
            format!(
                "{}/{}: {} != pinned {}",
                r.name,
                r.layer,
                r.virtual_end_ns,
                r.pinned_end_ns.unwrap()
            )
        })
        .collect();
    assert!(drifted.is_empty(), "virtual-time drift: {drifted:?}");
}

/// Hopper-sized machine (6,384 nodes x 24 cores), sparse relay: the
/// virtual end time is pinned, and only a sliver of the machine's per-PE
/// state may materialize.
#[test]
fn hopper_scale_sparse_smoke() {
    let (events, vend, pages) = sparse_relay(HOPPER_PES, HOPPER_CORES_PER_NODE, 256, 6);
    assert_eq!(events, 6_656);
    assert_eq!(vend, 148_707, "virtual end drifted at Hopper scale");
    // 256 chains x 7 touched PEs: far under a quarter of the machine.
    let total = (HOPPER_PES as u64).div_ceil(charm_rt::pe_table::PE_PAGE_LEN as u64);
    assert!(
        pages < total / 4,
        "sparse run materialized {pages} of {total} PE pages"
    );
    assert_under_rss_ceiling("hopper sparse smoke");
}

/// The mebi-PE `scale` bench row, exactly as `--bin scale` runs it: same
/// workload shape, same pinned virtual end time — in a debug build.
#[test]
fn million_pe_row_is_bit_identical_in_debug() {
    let spec = scale::spec("million_sparse").expect("row exists");
    let (events, vend, pages) = sparse_relay(spec.pes, spec.cores_per_node, 2048, 6);
    assert_eq!(events, 53_248);
    assert_eq!(
        Some(vend),
        spec.pinned_end_ns,
        "debug build disagrees with the pinned million_sparse row"
    );
    let total = (spec.pes as u64).div_ceil(charm_rt::pe_table::PE_PAGE_LEN as u64);
    assert!(
        pages < total / 4,
        "sparse run materialized {pages} of {total} PE pages"
    );
    assert_under_rss_ceiling("million-PE row");
}

/// Building a mebi-PE machine must materialize no per-PE state at all:
/// construction is O(nodes), first touch is what pays.
#[test]
fn million_pe_construction_materializes_nothing() {
    let c = LayerKind::ugni().cluster(MILLION_PES, 16);
    assert_eq!(
        c.materialized_pe_pages(),
        0,
        "construction alone materialized per-PE state"
    );
    assert!(c.total_pe_pages() > 0);
    assert_under_rss_ceiling("million-PE construction");
}
