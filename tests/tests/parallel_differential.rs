//! Parallel-vs-sequential bit-identity: `Cluster::run_parallel(t)` must
//! reproduce the sequential engine's every virtual timestamp, statistic,
//! and figure input exactly, for every thread count — parallel execution
//! is an implementation detail, never an observable one.
//!
//! Each case runs the same app with `threads = 1` (the sequential engine)
//! and `threads ∈ {2, 4, 8}` (the conservative windowed engine) and
//! compares results to the bit. The suite deliberately straddles every
//! protocol regime: SMSG eager, FMA/BTE rendezvous, persistent channels
//! (whose remote-side setup charge exercises the driver's global-halt
//! path), collective fan-out, and an active fault plan with a mid-run
//! link-down window (which degrades the lookahead and reroutes traffic).

use charm_apps::jacobi2d::{run_jacobi, JacobiConfig};
use charm_apps::kneighbor::kneighbor_report;
use charm_apps::one_to_all::one_to_all_latency;
use charm_apps::pingpong::{charm_bandwidth, charm_one_way_report};
use charm_apps::LayerKind;
use charm_rt::prelude::{set_default_handoff_min_events, set_default_threads_forced, RunReport};
use gemini_net::{FaultPlan, LinkDownWindow};

/// Parallel thread counts each case compares against the sequential run.
/// `CHARM_TEST_THREADS=N` (set by CI's matrix legs) narrows the sweep to
/// one count so the legs split the work instead of repeating it.
fn thread_counts() -> Vec<u32> {
    match std::env::var("CHARM_TEST_THREADS") {
        Ok(v) => vec![v.parse().expect("CHARM_TEST_THREADS must be a number")],
        Err(_) => vec![2, 4, 8],
    }
}

/// Run `f` once sequentially and once per parallel thread count, and hand
/// each result to the caller's comparator together with a context label.
fn differential<R>(f: impl Fn() -> R, check: impl Fn(&R, &R, u32)) {
    // Hand off every eligible window: these configurations are small, and
    // the point is to exercise the worker path, not to run fast.
    set_default_handoff_min_events(0);
    set_default_threads_forced(1);
    let seq = f();
    for t in thread_counts() {
        set_default_threads_forced(t);
        let par = f();
        set_default_threads_forced(1);
        check(&seq, &par, t);
    }
}

fn assert_reports_eq(a: &RunReport, b: &RunReport, ctx: &str) {
    assert_eq!(a.end_time, b.end_time, "{ctx}: virtual end time drifted");
    assert_eq!(a.stats, b.stats, "{ctx}: event statistics drifted");
    assert_eq!(a.stopped_early, b.stopped_early, "{ctx}: stop flag drifted");
}

fn plan() -> FaultPlan {
    let mut f = FaultPlan::uniform_drop(0xD1FF, 1e-3);
    f.smsg_corrupt = 1e-3;
    f.link_down.push(LinkDownWindow {
        node: 0,
        dim: 0,
        plus: true,
        from_ns: 100_000,
        until_ns: 400_000,
    });
    f
}

#[test]
fn pingpong_straddles_eager_and_rendezvous() {
    for layer in [LayerKind::ugni(), LayerKind::mpi()] {
        // 64B = SMSG eager, 8K/64K = rendezvous (FMA then BTE).
        for bytes in [64usize, 8192, 65536] {
            differential(
                || charm_one_way_report(&layer, 1, bytes, 30, false),
                |a, b, t| {
                    let ctx = format!("{} pingpong {bytes}B threads={t}", layer.name());
                    assert_eq!(a.0.to_bits(), b.0.to_bits(), "{ctx}: latency");
                    assert_reports_eq(&a.2, &b.2, &ctx);
                },
            );
        }
    }
}

#[test]
fn pingpong_persistent_channels() {
    // Persistent setup charges the destination PE from the source's
    // command — the one remote-side effect the parallel driver must
    // serialize via the global halt.
    for layer in [LayerKind::ugni(), LayerKind::mpi()] {
        differential(
            || charm_one_way_report(&layer, 1, 65536, 30, true),
            |a, b, t| {
                let ctx = format!("{} persistent pingpong threads={t}", layer.name());
                assert_eq!(a.0.to_bits(), b.0.to_bits(), "{ctx}: latency");
                assert_reports_eq(&a.2, &b.2, &ctx);
            },
        );
    }
}

#[test]
fn bandwidth_window() {
    differential(
        || charm_bandwidth(&LayerKind::ugni(), 65536, 8, 10),
        |a, b, t| assert_eq!(a.to_bits(), b.to_bits(), "bandwidth threads={t}"),
    );
}

#[test]
fn jacobi2d_grid_and_residual() {
    let cfg = JacobiConfig {
        n: 48,
        blocks: 4,
        iters: 12,
    };
    for layer in [LayerKind::ugni(), LayerKind::mpi()] {
        differential(
            || run_jacobi(&layer, 8, 2, &cfg),
            |a, b, t| {
                let ctx = format!("{} jacobi threads={t}", layer.name());
                assert_eq!(a.time_ns, b.time_ns, "{ctx}: end time");
                assert_eq!(a.events, b.events, "{ctx}: event count");
                assert_eq!(
                    a.residual.to_bits(),
                    b.residual.to_bits(),
                    "{ctx}: residual"
                );
                let drift = a
                    .grid
                    .iter()
                    .zip(&b.grid)
                    .any(|(x, y)| x.to_bits() != y.to_bits());
                assert!(!drift, "{ctx}: grid values drifted");
            },
        );
    }
}

#[test]
fn kneighbor_ring() {
    for layer in [LayerKind::ugni(), LayerKind::mpi()] {
        differential(
            || kneighbor_report(&layer, 16, 4, 2, 1024, 8),
            |a, b, t| {
                let ctx = format!("{} kneighbor threads={t}", layer.name());
                assert_eq!(a.0.to_bits(), b.0.to_bits(), "{ctx}: iteration time");
                assert_reports_eq(&a.1, &b.1, &ctx);
            },
        );
    }
}

#[test]
fn one_to_all_under_active_fault_plan() {
    // The link-down window degrades the derived lookahead and forces
    // adaptive reroutes mid-run; recovery timestamps must still replay.
    for layer in [
        LayerKind::ugni().with_fault(plan()),
        LayerKind::mpi().with_fault(plan()),
    ] {
        differential(
            || one_to_all_latency(&layer, 4, 4, 4096, 6),
            |a, b, t| {
                let ctx = format!("{} one_to_all faulty threads={t}", layer.name());
                assert_eq!(a.to_bits(), b.to_bits(), "{ctx}: latency");
            },
        );
    }
}

#[test]
fn jacobi_under_active_fault_plan() {
    let cfg = JacobiConfig {
        n: 32,
        blocks: 4,
        iters: 8,
    };
    for layer in [
        LayerKind::ugni().with_fault(plan()),
        LayerKind::mpi().with_fault(plan()),
    ] {
        differential(
            || run_jacobi(&layer, 8, 2, &cfg),
            |a, b, t| {
                let ctx = format!("{} jacobi faulty threads={t}", layer.name());
                assert_eq!(a.time_ns, b.time_ns, "{ctx}: end time");
                assert_eq!(a.events, b.events, "{ctx}: event count");
                assert_eq!(
                    a.residual.to_bits(),
                    b.residual.to_bits(),
                    "{ctx}: residual"
                );
            },
        );
    }
}

/// The uGNI contract verifier must stay clean when the cluster runs under
/// the parallel driver: windowed execution reorders host wall-clock work
/// but never the virtual-time uGNI call sequence the checker observes.
#[test]
fn ugni_contract_stays_clean_under_parallel_driver() {
    use bytes::Bytes;

    set_default_handoff_min_events(0);
    for threads in [2u32, 4] {
        set_default_threads_forced(threads);
        let layer = LayerKind::ugni().with_fault(plan());
        let mut c = layer.cluster(16, 4);
        c.init_user(|_| 0u64);
        let echo = c.register_handler(|ctx, env| {
            *ctx.user::<u64>() += env.payload.len() as u64;
            ctx.charge(150);
        });
        let kick = c.register_handler(move |ctx, _| {
            // Mixed sizes: SMSG eager, FMA rendezvous, BTE rendezvous.
            for (i, bytes) in [96usize, 6_000, 70_000, 256, 20_000].iter().enumerate() {
                let dst = 1 + (i as u32 * 5) % (ctx.num_pes() - 1);
                ctx.send(dst, echo, Bytes::from(vec![i as u8; *bytes]));
            }
        });
        c.inject(0, 0, kick, Bytes::new());
        let report = c.run();
        set_default_threads_forced(1);
        assert!(report.end_time > 0);
        layer.assert_contract_clean(&mut c);
    }
}
