//! Destination-batched AM aggregation acceptance (ISSUE 10): coalescing
//! is a *timing* optimization and must never be an observable one beyond
//! timing. Aggregated runs must bit-replay, agree with the sequential
//! engine at every thread count, survive an active fault plan with
//! exactly-once delivery per *constituent* AM (not per batch envelope),
//! recover through a node crash without losing or doubling a constituent,
//! and produce identical application results at every flush threshold.

use bytes::Bytes;
use charm_apps::kneighbor::kneighbor_fine_report;
use charm_apps::LayerKind;
use charm_rt::prelude::*;
use gemini_net::{FaultPlan, LinkDownWindow, NodeCrashWindow};
use proptest::prelude::*;

/// Parallel thread counts; `CHARM_TEST_THREADS=N` (CI's matrix legs)
/// narrows the sweep to one count.
fn thread_counts() -> Vec<u32> {
    match std::env::var("CHARM_TEST_THREADS") {
        Ok(v) => vec![v.parse().expect("CHARM_TEST_THREADS must be a number")],
        Err(_) => vec![2, 4],
    }
}

fn differential<R>(f: impl Fn() -> R, check: impl Fn(&R, &R, u32)) {
    set_default_handoff_min_events(0);
    set_default_threads_forced(1);
    let seq = f();
    for t in thread_counts() {
        set_default_threads_forced(t);
        let par = f();
        set_default_threads_forced(1);
        check(&seq, &par, t);
    }
}

fn assert_reports_eq(a: &RunReport, b: &RunReport, ctx: &str) {
    assert_eq!(a.end_time, b.end_time, "{ctx}: virtual end time drifted");
    assert_eq!(a.stats, b.stats, "{ctx}: event statistics drifted");
    assert_eq!(a.stopped_early, b.stopped_early, "{ctx}: stop flag drifted");
}

fn plan() -> FaultPlan {
    let mut f = FaultPlan::uniform_drop(0xD1FF, 1e-3);
    f.smsg_corrupt = 1e-3;
    f.link_down.push(LinkDownWindow {
        node: 0,
        dim: 0,
        plus: true,
        from_ns: 100_000,
        until_ns: 400_000,
    });
    f
}

/// All-to-all scatter of 16-byte typed AMs under `cfg`; returns the
/// cluster-wide (receipt count, content xor, virtual end time, pool hits).
/// The xor folds every payload byte position-sensitively, so a constituent
/// lost, doubled, truncated, or scattered at the wrong offset by the batch
/// walk changes it.
fn am_scatter(
    layer: &LayerKind,
    cfg: AmConfig,
    pes: u32,
    cores_per_node: u32,
    msgs: u32,
) -> (u64, u64, u64, u64) {
    let mut c = layer.cluster(pes, cores_per_node);
    c.am_config(cfg);
    #[derive(Default)]
    struct St {
        count: u64,
        xor: u64,
    }
    c.init_user(|_| St::default());
    let recv = c.register_am::<[u8; 16]>(|ctx, _src, payload| {
        let st = ctx.user::<St>();
        st.count += 1;
        for (i, b) in payload.iter().enumerate() {
            st.xor ^= (*b as u64) << (8 * (i % 8));
        }
    });
    let kick = c.register_handler(move |ctx, _| {
        let me = ctx.pe();
        for dst in 0..ctx.num_pes() {
            if dst == me {
                continue;
            }
            for m in 0..msgs {
                let mut p = [0u8; 16];
                p[0] = me as u8;
                p[1] = dst as u8;
                p[2] = m as u8;
                p[3] = (me.wrapping_mul(31) ^ dst.wrapping_mul(7) ^ m) as u8;
                ctx.am_send(dst, recv, p);
            }
        }
    });
    for pe in 0..pes {
        c.inject(0, pe, kick, Bytes::new());
    }
    let report = c.run();
    let (mut count, mut xor, mut hits) = (0u64, 0u64, 0u64);
    for pe in 0..pes {
        let st = c.user::<St>(pe);
        count += st.count;
        xor ^= st.xor;
        hits += c.am_pool_stats(pe).hits;
    }
    (count, xor, report.end_time, hits)
}

#[test]
fn aggregated_runs_are_bit_replayable() {
    // Same shape twice: the flush timers are ordinary virtual-time events,
    // so every timestamp and counter must repeat exactly.
    let a = kneighbor_fine_report(&LayerKind::ugni(), 8, 4, 2, 8, 10, true);
    let b = kneighbor_fine_report(&LayerKind::ugni(), 8, 4, 2, 8, 10, true);
    assert_eq!(a.0.to_bits(), b.0.to_bits(), "iteration time drifted");
    assert_reports_eq(&a.1, &b.1, "aggregated double-run");
}

#[test]
fn aggregated_identical_across_parallel_threads() {
    differential(
        || kneighbor_fine_report(&LayerKind::ugni(), 8, 4, 2, 8, 10, true),
        |a, b, t| {
            let ctx = format!("aggregated kneighbor_fine threads={t}");
            assert_eq!(a.0.to_bits(), b.0.to_bits(), "{ctx}: iteration time");
            assert_reports_eq(&a.1, &b.1, &ctx);
            assert!(a.1.stats.am_batches > 0, "{ctx}: nothing aggregated");
        },
    );
}

#[test]
fn aggregated_identical_across_threads_under_active_fault_plan() {
    // Drops and corruption force SMSG retransmits of whole batch
    // envelopes; the link-down window reroutes them. Exactly-once per
    // constituent (the internal `st.done` assert needs every data AM and
    // every ack exactly once) must hold at every thread count, bit-equal
    // to the sequential engine.
    let layer = LayerKind::ugni().with_fault(plan());
    differential(
        || kneighbor_fine_report(&layer, 8, 4, 2, 8, 10, true),
        |a, b, t| {
            let ctx = format!("aggregated faulty kneighbor_fine threads={t}");
            assert_eq!(a.0.to_bits(), b.0.to_bits(), "{ctx}: iteration time");
            assert_reports_eq(&a.1, &b.1, &ctx);
        },
    );
}

#[test]
fn faults_never_lose_or_double_a_constituent() {
    // The fault plan retries lost envelopes; the seq-window dedup must
    // then drop *whole duplicate batches* so no constituent lands twice.
    let cfg = || AmConfig {
        aggregation: true,
        ..AmConfig::default()
    };
    let clean = am_scatter(&LayerKind::ugni(), cfg(), 8, 2, 12);
    let faulty = am_scatter(&LayerKind::ugni().with_fault(plan()), cfg(), 8, 2, 12);
    assert_eq!(clean.0, 8 * 7 * 12, "clean run lost a constituent");
    assert_eq!(faulty.0, clean.0, "faults changed the receipt count");
    assert_eq!(faulty.1, clean.1, "faults changed the received bytes");
    assert!(
        faulty.2 >= clean.2,
        "retransmits cannot make the run faster"
    );
}

#[test]
fn flush_buffers_recycle_through_the_pool() {
    // Enough per-destination traffic that every source size-flushes each
    // coalescing buffer several times: after the first flush returns its
    // buffer, later takes must be pool hits, not fresh allocations.
    let cfg = AmConfig {
        aggregation: true,
        ..AmConfig::default()
    };
    let (count, _xor, _end, hits) = am_scatter(&LayerKind::ugni(), cfg, 4, 2, 200);
    assert_eq!(count, 4 * 3 * 200);
    assert!(hits > 0, "flushed buffers never came back from the pool");
}

/// Exactly-once across a node crash: an AM ping-pong where PE 0 drives
/// `ROUNDS` rounds of `MSGS` aggregated 16-byte AMs to a peer on node 1,
/// which acks each completed round. Node 1 dies mid-run and restarts; the
/// detector declares it, rollback-replay restores the buddy checkpoint
/// (wiping half-built coalescing buffers — their constituents are
/// pre-rollback sends the replay regenerates), and the final counters
/// must equal the fault-free totals exactly.
#[test]
fn crash_recovery_is_exactly_once_per_constituent() {
    const ROUNDS: u64 = 100;
    const MSGS: u64 = 4;

    #[derive(Default)]
    struct St {
        acks: u64,
        data: u64,
    }
    impl Checkpoint for St {
        fn save(&self) -> Vec<u8> {
            let mut v = self.acks.to_le_bytes().to_vec();
            v.extend_from_slice(&self.data.to_le_bytes());
            v
        }
        fn restore(b: &[u8]) -> Self {
            St {
                acks: u64::from_le_bytes(b[..8].try_into().unwrap()),
                data: u64::from_le_bytes(b[8..16].try_into().unwrap()),
            }
        }
    }

    let mut plan = FaultPlan::default();
    plan.node_crash.push(NodeCrashWindow {
        node: 1,
        at_ns: 50_000,
        restart_after_ns: Some(30_000),
    });
    let layer = LayerKind::ugni().with_fault(plan);
    let mut c = layer.cluster(4, 2);
    c.am_config(AmConfig {
        aggregation: true,
        flush_delay_ns: 1_000,
        ..AmConfig::default()
    });
    c.enable_ft(FtConfig {
        hb_period: 20_000,
        hb_timeout: 150_000,
        ckpt_period: 60_000,
        ..FtConfig::default()
    });
    c.init_user(|_| St::default());
    c.ft_user::<St>();

    let peer: PeId = 2; // first PE of node 1, the crashing node
    let ack_cell = std::sync::Arc::new(std::sync::OnceLock::new());
    let ack2 = ack_cell.clone();
    let data = c.register_am::<[u8; 16]>(move |ctx, _src, _payload| {
        let st = ctx.user::<St>();
        st.data += 1;
        if st.data % MSGS == 0 {
            ctx.am_send(0, *ack2.get().expect("ack AM registered"), ());
        }
    });
    let send_round = move |ctx: &mut PeCtx| {
        for m in 0..MSGS {
            ctx.am_send(peer, data, [m as u8; 16]);
        }
    };
    let ack = c.register_am::<()>(move |ctx, _src, ()| {
        let st = ctx.user::<St>();
        st.acks += 1;
        if st.acks >= ROUNDS {
            ctx.stop();
            return;
        }
        send_round(ctx);
        ctx.ft_maybe_checkpoint();
    });
    ack_cell.set(ack).expect("set once");
    let kick = c.register_handler(move |ctx, _| send_round(ctx));
    let resume = c.register_handler(move |ctx, _| {
        // The in-flight round died with the old epoch; the restored ack
        // count says which round to replay.
        if ctx.user::<St>().acks < ROUNDS {
            send_round(ctx);
        }
    });
    c.ft_on_resume(resume, 0);
    c.inject(0, 0, kick, Bytes::new());
    let report = c.run();

    let ft = c.ft_report();
    assert_eq!(ft.recoveries, 1, "the crash was never recovered");
    assert!(ft.ckpts >= 1, "no checkpoint wave completed");
    assert_eq!(c.user::<St>(0).acks, ROUNDS, "acks lost or doubled");
    assert_eq!(
        c.user::<St>(peer).data,
        ROUNDS * MSGS,
        "a constituent AM was lost or doubled across the rollback"
    );
    assert!(report.end_time > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any flush threshold from 1 byte (every AM oversized, pure direct
    /// path) up to the full SMSG limit yields the exact results of the
    /// unaggregated run — the knob moves timing, never application state.
    #[test]
    fn flush_threshold_never_changes_results(max_batch in 1usize..=1024) {
        let off = am_scatter(
            &LayerKind::ugni(),
            AmConfig::default(), // aggregation disabled: ground truth
            6, 2, 8,
        );
        let on = am_scatter(
            &LayerKind::ugni(),
            AmConfig {
                aggregation: true,
                max_batch_bytes: max_batch,
                ..AmConfig::default()
            },
            6, 2, 8,
        );
        prop_assert_eq!(on.0, off.0, "receipt count moved at threshold {}", max_batch);
        prop_assert_eq!(on.1, off.1, "payload bytes moved at threshold {}", max_batch);
    }
}
