//! Property-based end-to-end protocol tests: arbitrary message size mixes
//! and fan-outs must be delivered exactly once, uncorrupted, on both
//! machine layers. Case counts are kept small — each case is a whole
//! cluster simulation.

use bytes::Bytes;
use charm_apps::LayerKind;
use proptest::prelude::*;

/// Run a scatter of messages with the given sizes from PE 0 to round-robin
/// destinations; return (count, xor-of-bytes, total-bytes) observed.
fn scatter(layer: &LayerKind, pes: u32, cores: u32, sizes: &[usize]) -> (u64, u64, u64) {
    let mut c = layer.cluster(pes, cores);
    #[derive(Default)]
    struct St {
        count: u64,
        xor: u64,
        bytes: u64,
    }
    c.init_user(|_| St::default());
    let recv = c.register_handler(|ctx, env| {
        let st = ctx.user::<St>();
        st.count += 1;
        st.bytes += env.payload.len() as u64;
        for (i, b) in env.payload.iter().enumerate() {
            st.xor ^= (*b as u64) << (8 * (i % 8));
        }
    });
    let sizes_owned: Vec<usize> = sizes.to_vec();
    let kick = c.register_handler(move |ctx, _| {
        for (i, &s) in sizes_owned.iter().enumerate() {
            let dst = 1 + (i as u32 % (ctx.num_pes() - 1));
            let payload: Vec<u8> = (0..s).map(|j| ((i * 131 + j * 7) % 251) as u8).collect();
            ctx.send(dst, recv, Bytes::from(payload));
        }
    });
    c.inject(0, 0, kick, Bytes::new());
    c.run();
    let mut total = (0u64, 0u64, 0u64);
    for pe in 0..pes {
        let st = c.user::<St>(pe);
        total.0 += st.count;
        total.1 ^= st.xor;
        total.2 += st.bytes;
    }
    total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever mix of sizes (spanning SMSG, FMA-rendezvous, and
    /// BTE-rendezvous ranges), every byte arrives exactly once on the
    /// uGNI layer.
    #[test]
    fn ugni_layer_delivers_any_size_mix(
        sizes in proptest::collection::vec(1usize..300_000, 1..12)
    ) {
        let expect_bytes: u64 = sizes.iter().map(|&s| s as u64).sum();
        let (count, _xor, bytes) = scatter(&LayerKind::ugni(), 4, 2, &sizes);
        prop_assert_eq!(count, sizes.len() as u64);
        prop_assert_eq!(bytes, expect_bytes);
    }

    /// Same property on the MPI layer.
    #[test]
    fn mpi_layer_delivers_any_size_mix(
        sizes in proptest::collection::vec(1usize..300_000, 1..12)
    ) {
        let expect_bytes: u64 = sizes.iter().map(|&s| s as u64).sum();
        let (count, _xor, bytes) = scatter(&LayerKind::mpi(), 4, 2, &sizes);
        prop_assert_eq!(count, sizes.len() as u64);
        prop_assert_eq!(bytes, expect_bytes);
    }

    /// Payload *content* is identical across machine layers (the xor
    /// digest matches between uGNI, MPI and the ideal network).
    #[test]
    fn payload_digest_identical_across_layers(
        sizes in proptest::collection::vec(1usize..100_000, 1..8)
    ) {
        let a = scatter(&LayerKind::ugni(), 3, 1, &sizes);
        let b = scatter(&LayerKind::mpi(), 3, 1, &sizes);
        let c = scatter(&LayerKind::Ideal(1_000), 3, 1, &sizes);
        prop_assert_eq!(a, b);
        prop_assert_eq!(b, c);
    }
}
