//! Cross-crate integration tests: the same applications must produce
//! identical *results* on every machine layer (uGNI, MPI, ideal) — only
//! the virtual timing may differ. This exercises the full stack: app ->
//! charm arrays/reductions -> converse -> LRTS -> simulated uGNI/MPI ->
//! Gemini fabric.

use charm_apps::jacobi2d::{jacobi_sequential, run_jacobi, JacobiConfig};
use charm_apps::minimd::{run_minimd, MdConfig};
use charm_apps::nqueens::{known_solutions, run_nqueens, NqConfig, WorkMode};
use charm_apps::LayerKind;

fn layers() -> Vec<LayerKind> {
    vec![LayerKind::ugni(), LayerKind::mpi(), LayerKind::Ideal(1_200)]
}

#[test]
fn nqueens_exact_identical_across_layers() {
    let cfg = NqConfig {
        n: 10,
        threshold: 4,
        mode: WorkMode::Exact { ns_per_node: 120 },
        seed: 5,
    };
    for layer in layers() {
        let r = run_nqueens(&layer, 12, 4, &cfg);
        assert_eq!(
            Some(r.solutions),
            known_solutions(10),
            "wrong count on {}",
            layer.name()
        );
    }
}

#[test]
fn nqueens_task_count_independent_of_layer() {
    let cfg = NqConfig {
        n: 9,
        threshold: 3,
        mode: WorkMode::Exact { ns_per_node: 120 },
        seed: 6,
    };
    let counts: Vec<u64> = layers()
        .iter()
        .map(|l| run_nqueens(l, 8, 4, &cfg).tasks)
        .collect();
    assert!(
        counts.windows(2).all(|w| w[0] == w[1]),
        "task counts diverged: {counts:?}"
    );
}

#[test]
fn jacobi_identical_across_layers_and_matches_sequential() {
    let cfg = JacobiConfig {
        n: 20,
        blocks: 4,
        iters: 15,
    };
    let (seq, _) = jacobi_sequential(20, 15);
    for layer in layers() {
        let r = run_jacobi(&layer, 8, 4, &cfg);
        assert_eq!(r.grid, seq, "grid mismatch on {}", layer.name());
    }
}

#[test]
fn minimd_completes_on_all_layers() {
    let cfg = MdConfig {
        atoms: 5_000,
        steps: 3,
        ns_per_atom: 21_233,
        patches: None,
        pme_bytes: 2_048,
        lb_at_step: Some(1),
        imbalance: 0.3,
        seed: 7,
    };
    for layer in layers() {
        let r = run_minimd(&layer, 12, 4, &cfg);
        assert_eq!(r.steps, 3, "{} lost steps", layer.name());
        assert!(r.ms_per_step > 0.0);
    }
}

#[test]
fn ugni_faster_than_mpi_on_every_app() {
    // The paper's headline: the uGNI machine layer wins end to end.
    // Fine grain: enough tasks per PE that the systematic per-message
    // advantage dominates placement noise (at coarse grain, random task
    // placement varies with delivery order and can swing either way).
    let nq = NqConfig {
        n: 12,
        threshold: 5,
        mode: WorkMode::Modeled {
            total_seq_ns: 500_000_000,
            alpha: 1.2,
        },
        seed: 8,
    };
    let nq_u = run_nqueens(&LayerKind::ugni(), 48, 24, &nq).time_ns;
    let nq_m = run_nqueens(&LayerKind::mpi(), 48, 24, &nq).time_ns;
    assert!(nq_u < nq_m, "nqueens: uGNI {nq_u} !< MPI {nq_m}");

    let md = MdConfig {
        atoms: 10_000,
        steps: 3,
        ns_per_atom: 21_233,
        patches: None,
        pme_bytes: 2_048,
        lb_at_step: None,
        imbalance: 0.2,
        seed: 9,
    };
    let md_u = run_minimd(&LayerKind::ugni(), 48, 24, &md).ms_per_step;
    let md_m = run_minimd(&LayerKind::mpi(), 48, 24, &md).ms_per_step;
    assert!(md_u < md_m, "minimd: uGNI {md_u} !< MPI {md_m}");
}

#[test]
fn determinism_across_repeated_runs() {
    let cfg = NqConfig {
        n: 11,
        threshold: 4,
        mode: WorkMode::Exact { ns_per_node: 100 },
        seed: 10,
    };
    for layer in [LayerKind::ugni(), LayerKind::mpi()] {
        let a = run_nqueens(&layer, 16, 4, &cfg);
        let b = run_nqueens(&layer, 16, 4, &cfg);
        assert_eq!(a.time_ns, b.time_ns, "{} nondeterministic", layer.name());
        assert_eq!(a.tasks, b.tasks);
    }
}
