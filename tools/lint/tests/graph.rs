//! Graph-pass tests: each reachability rule must fire on its seeded
//! fixture with a witness chain, go quiet under the documented escape (or
//! when the violation is mutated away), and the real workspace must scan
//! clean under the full lexical+graph pass.

use lint_pass::graph::{self, Graph};
use lint_pass::{lint_workspace_full, report_json, Finding};
use std::path::Path;

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

fn analyze_src(name: &str, src: &str) -> Vec<Finding> {
    graph::analyze(&[(
        "core".to_string(),
        format!("fixtures/{name}"),
        src.to_string(),
    )])
}

fn rules(findings: &[Finding]) -> Vec<&str> {
    let mut r: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    r.sort();
    r.dedup();
    r
}

fn chain_of<'a>(findings: &'a [Finding], msg_part: &str) -> &'a [String] {
    &findings
        .iter()
        .find(|f| f.msg.contains(msg_part))
        .unwrap_or_else(|| panic!("no finding mentioning {msg_part:?}: {findings:?}"))
        .chain
}

// ---------------------------------------------------------------- worker

#[test]
fn worker_purity_fixture_fires() {
    let src = fixture("graph_worker_impure.rs");
    let f = analyze_src("graph_worker_impure.rs", &src);
    assert_eq!(rules(&f), ["worker-purity"], "findings: {f:?}");
    assert_eq!(f.len(), 3, "findings: {f:?}");

    // Thread primitive two calls below the entry point, witness chain
    // from the root through the helper.
    let chain = chain_of(&f, "`Mutex`");
    assert!(chain[0].contains("exec_local_event"), "chain: {chain:?}");
    assert!(
        chain.last().unwrap().contains("log_stat"),
        "chain: {chain:?}"
    );
    assert!(
        chain.iter().any(|h| h.contains("helper")),
        "chain: {chain:?}"
    );

    // Serial-only marker on the callee, flagged at the worker's call site.
    assert!(f.iter().any(|x| x.msg.contains("apply_effect")));
    // Static touched inside a worker-reachable helper.
    assert!(f.iter().any(|x| x.msg.contains("WORKER_SEED")));
}

#[test]
fn worker_purity_escapes_and_mutations_go_quiet() {
    let src = fixture("graph_worker_impure.rs");

    // Escape every offending line with `// worker-ok:`.
    let escaped = src
        .replace(
            "let m = Mutex::new(x);",
            "let m = Mutex::new(x); // worker-ok: test escape",
        )
        .replace(
            "let b = apply_effect(a);",
            "let b = apply_effect(a); // worker-ok: test escape",
        )
        .replace(
            "    WORKER_SEED\n",
            "    WORKER_SEED // worker-ok: test escape\n",
        );
    let f = analyze_src("graph_worker_impure.rs", &escaped);
    assert!(f.is_empty(), "findings: {f:?}");

    // Rename the entry point: no root, no reachability, no findings.
    let unrooted = src.replace("exec_local_event", "some_local_event");
    let f = analyze_src("graph_worker_impure.rs", &unrooted);
    assert!(f.is_empty(), "findings: {f:?}");
}

#[test]
fn am_handler_root_fixture_fires() {
    // A named fn passed to `register_am` is a worker root: the thread
    // primitive one call below it and the static it reads both fire,
    // with witness chains starting at the handler.
    let src = fixture("graph_am_impure.rs");
    let f = analyze_src("graph_am_impure.rs", &src);
    assert_eq!(rules(&f), ["worker-purity"], "findings: {f:?}");
    assert_eq!(f.len(), 2, "findings: {f:?}");

    let chain = chain_of(&f, "`Mutex`");
    assert!(chain[0].contains("on_ping"), "chain: {chain:?}");
    assert!(chain.last().unwrap().contains("tally"), "chain: {chain:?}");
    assert!(f.iter().any(|x| x.msg.contains("AM_SEED")));
}

#[test]
fn am_handler_root_escapes_and_mutations_go_quiet() {
    let src = fixture("graph_am_impure.rs");

    // Escape both offending lines with `// worker-ok:`.
    let escaped = src
        .replace(
            "let m = Mutex::new(x);",
            "let m = Mutex::new(x); // worker-ok: test escape",
        )
        .replace(
            "tally(x) + AM_SEED",
            "tally(x) + AM_SEED // worker-ok: test escape",
        );
    let f = analyze_src("graph_am_impure.rs", &escaped);
    assert!(f.is_empty(), "findings: {f:?}");

    // Register a closure instead of the named fn: nothing roots on_ping.
    let closured = src.replace(
        "c.register_am::<u32>(on_ping)",
        "c.register_am::<u32>(move |x| x)",
    );
    let f = analyze_src("graph_am_impure.rs", &closured);
    assert!(f.is_empty(), "findings: {f:?}");

    // A *call* in argument position is the registering fn's business,
    // not a handler registration: `on_ping(7)` must not root it.
    let called = src.replace(
        "c.register_am::<u32>(on_ping)",
        "c.register_am::<u32>(on_ping(7))",
    );
    let f = analyze_src("graph_am_impure.rs", &called);
    assert!(f.is_empty(), "findings: {f:?}");
}

// -------------------------------------------------------------- recovery

#[test]
fn recovery_panic_fixture_fires() {
    let src = fixture("graph_recovery_panic.rs");
    let f = analyze_src("graph_recovery_panic.rs", &src);
    assert_eq!(rules(&f), ["recovery-panic-freedom"], "findings: {f:?}");
    // Exactly the transitive unwrap: debug_assert! is exempt, and
    // fresh_path is not a recovery root.
    assert_eq!(f.len(), 1, "findings: {f:?}");
    assert!(f[0].msg.contains("finalize"));

    // Witness: recover_link -> Conn::latest_seq -> finalize.
    let chain = &f[0].chain;
    assert!(chain[0].contains("recover_link"), "chain: {chain:?}");
    assert!(
        chain.iter().any(|h| h.contains("Conn::latest_seq")),
        "chain: {chain:?}"
    );
    assert!(
        chain.last().unwrap().contains("finalize"),
        "chain: {chain:?}"
    );
}

#[test]
fn recovery_panic_escapes_and_mutations_go_quiet() {
    let src = fixture("graph_recovery_panic.rs");

    let escaped = src.replace(
        "    v.unwrap()",
        "    // panic-ok: test escape\n    v.unwrap()",
    );
    let f = analyze_src("graph_recovery_panic.rs", &escaped);
    assert!(f.is_empty(), "findings: {f:?}");

    // Rename the root so nothing recovery-named reaches the panic.
    let unrooted = src.replace("recover_link", "mainline_link");
    let f = analyze_src("graph_recovery_panic.rs", &unrooted);
    assert!(f.is_empty(), "findings: {f:?}");
}

// ---------------------------------------------------------------- charge

#[test]
fn charge_coverage_fixture_fires() {
    let src = fixture("graph_charge_uncovered.rs");
    let f = analyze_src("graph_charge_uncovered.rs", &src);
    assert_eq!(rules(&f), ["charge-coverage"], "findings: {f:?}");
    // Only the uncharged path fires: covered_send's count_send rides the
    // same function as charge_wire.
    assert_eq!(f.len(), 1, "findings: {f:?}");
    assert!(f[0].msg.contains("deliver_at"));

    let chain = &f[0].chain;
    assert!(chain[0].contains("on_event"), "chain: {chain:?}");
    assert!(
        chain.last().unwrap().contains("forward"),
        "chain: {chain:?}"
    );
}

#[test]
fn charge_coverage_escapes_and_mutations_go_quiet() {
    let src = fixture("graph_charge_uncovered.rs");

    let escaped = src.replace(
        "ctx.deliver_at(5);",
        "ctx.deliver_at(5); // charge-ok: test escape",
    );
    let f = analyze_src("graph_charge_uncovered.rs", &escaped);
    assert!(f.is_empty(), "findings: {f:?}");

    // Charging anywhere on the corridor covers the effect.
    let charged = src.replace(
        "ctx.deliver_at(5);",
        "ctx.charge_wire(1);\n        ctx.deliver_at(5);",
    );
    let f = analyze_src("graph_charge_uncovered.rs", &charged);
    assert!(f.is_empty(), "findings: {f:?}");
}

// ------------------------------------------------------------ call graph

#[test]
fn call_graph_resolves_every_call_form() {
    let src = fixture("graph_resolve.rs");
    let g = Graph::build(&[(
        "core".to_string(),
        "fixtures/graph_resolve.rs".to_string(),
        src,
    )]);

    let callees = |name: &str| {
        let id = g.fn_id(name).unwrap_or_else(|| panic!("no fn {name}"));
        g.callee_names(id)
    };

    // Free call inside a method.
    assert_eq!(callees("step"), ["bump"]);
    // Self-method + qualified `Widget::reset(self)`.
    assert_eq!(callees("tick"), ["Widget::reset", "Widget::step"]);
    // Unknown-receiver method call resolves by name.
    assert_eq!(callees("drive"), ["Widget::tick"]);
    // Trait-default body dispatches to the implementor's override.
    assert_eq!(callees("run_twice"), ["Widget::go"]);
    // The override, in turn, hits the inherent method.
    assert_eq!(callees("go"), ["Widget::step"]);
}

#[test]
fn witness_chain_renders_in_display_and_json() {
    let src = fixture("graph_recovery_panic.rs");
    let f = analyze_src("graph_recovery_panic.rs", &src);
    assert_eq!(f.len(), 1);

    let shown = f[0].to_string();
    assert!(shown.contains("[recovery-panic-freedom]"), "{shown}");
    assert!(shown.contains("\n    via recover_link"), "{shown}");
    assert!(shown.contains("\n     -> finalize"), "{shown}");

    let json = report_json(&f);
    assert!(json.contains("\"schema\": 1"), "{json}");
    assert!(
        json.contains("\"rule\": \"recovery-panic-freedom\""),
        "{json}"
    );
    assert!(json.contains("\"count\": 1"), "{json}");
    assert!(json.contains("recover_link"), "{json}");
}

// ------------------------------------------------------------- workspace

#[test]
fn workspace_is_clean_under_full_pass() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap();
    let f = lint_workspace_full(root);
    assert!(
        f.is_empty(),
        "workspace lexical+graph findings:\n{}",
        f.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
