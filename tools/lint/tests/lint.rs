//! The lint pass itself is tested two ways: each rule must fire on its
//! seeded fixture (under `tools/lint/fixtures/`, never compiled), and
//! the real workspace must scan clean.

use lint_pass::{lint_source, lint_workspace, Finding};
use std::path::Path;

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

fn rules(findings: &[Finding]) -> Vec<&str> {
    let mut r: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    r.sort();
    r.dedup();
    r
}

#[test]
fn hashmap_iteration_fixture_fires() {
    let src = fixture("hashmap_iter.rs");
    let f = lint_source("sim-core", "fixtures/hashmap_iter.rs", &src);
    assert_eq!(rules(&f), ["hashmap-iter"], "findings: {f:?}");
    // All three iteration shapes: .iter(), .keys(), for .. in &set.
    assert!(f.len() >= 3, "expected >= 3 sites, got {f:?}");
}

#[test]
fn hashmap_rule_only_applies_to_sim_crates() {
    let src = fixture("hashmap_iter.rs");
    // `apps` is not a simulation crate: figure drivers may use hash
    // iteration where order cannot reach simulated state.
    let f = lint_source("apps", "fixtures/hashmap_iter.rs", &src);
    assert!(f.is_empty(), "findings: {f:?}");
}

#[test]
fn unwrap_in_recovery_fixture_fires() {
    let src = fixture("unwrap_in_recovery.rs");
    let f = lint_source("lrts-ugni", "fixtures/unwrap_in_recovery.rs", &src);
    assert_eq!(rules(&f), ["unwrap-in-recovery"], "findings: {f:?}");
    // conn_retry's unwrap and repost_after_error's expect — but NOT the
    // unwrap in fresh_send (not a recovery path).
    assert_eq!(f.len(), 2, "findings: {f:?}");
    assert!(f.iter().any(|x| x.msg.contains("conn_retry")));
    assert!(f.iter().any(|x| x.msg.contains("repost_after_error")));
    assert!(!f.iter().any(|x| x.msg.contains("fresh_send")));
}

#[test]
fn unwrap_in_restore_fixture_fires() {
    let src = fixture("unwrap_in_restore.rs");
    let f = lint_source("lrts-ugni", "fixtures/unwrap_in_restore.rs", &src);
    assert_eq!(rules(&f), ["unwrap-in-recovery"], "findings: {f:?}");
    // The FT restore/checkpoint keywords are recovery paths too; the
    // unwrap in fresh_wave stays out of scope.
    assert_eq!(f.len(), 2, "findings: {f:?}");
    assert!(f.iter().any(|x| x.msg.contains("restore_snapshot")));
    assert!(f.iter().any(|x| x.msg.contains("take_checkpoint")));
    assert!(!f.iter().any(|x| x.msg.contains("fresh_wave")));
}

#[test]
fn std_time_fixture_fires() {
    let src = fixture("std_time.rs");
    let f = lint_source("gemini-net", "fixtures/std_time.rs", &src);
    assert_eq!(rules(&f), ["std-time"], "findings: {f:?}");
}

#[test]
fn charge_category_fixture_fires() {
    let src = fixture("charge_unpaired.rs");
    let f = lint_source("core", "fixtures/charge_unpaired.rs", &src);
    assert_eq!(rules(&f), ["charge-category"], "findings: {f:?}");
    // charge_overhead records the wrong Kind; charge_recovery is paired.
    assert_eq!(f.len(), 1, "findings: {f:?}");
    assert!(f[0].msg.contains("charge_overhead"));
    assert!(f[0].msg.contains("Kind::Overhead"));
}

#[test]
fn hot_path_copy_fixture_fires() {
    let src = fixture("hot_path_copy.rs");
    let f = lint_source("lrts-ugni", "fixtures/hot_path_copy.rs", &src);
    assert_eq!(rules(&f), ["hot-path-copy"], "findings: {f:?}");
    // to_vec in sync_send, copy_from_slice + Bytes::from(vec! in deliver,
    // to_vec in am_flush_dst — but NOT the copy-ok: line in drain_smsg,
    // and NOT setup_buffers (not a per-message function name).
    assert_eq!(f.len(), 4, "findings: {f:?}");
    assert!(f.iter().any(|x| x.msg.contains("sync_send")));
    assert!(f.iter().any(|x| x.msg.contains("am_flush_dst")));
    assert!(f.iter().filter(|x| x.msg.contains("deliver")).count() == 2);
    assert!(!f.iter().any(|x| x.msg.contains("drain_smsg")));
    assert!(!f.iter().any(|x| x.msg.contains("setup_buffers")));
    // Keyword matching is per `_`-segment: `send_count_report` is a
    // counter accessor and `resend_window` never contained `send`.
    assert!(!f.iter().any(|x| x.msg.contains("send_count_report")));
    assert!(!f.iter().any(|x| x.msg.contains("resend_window")));
}

#[test]
fn hot_path_copy_only_applies_to_sim_crates() {
    let src = fixture("hot_path_copy.rs");
    // Figure drivers and apps may build payloads however they like.
    let f = lint_source("apps", "fixtures/hot_path_copy.rs", &src);
    assert!(f.is_empty(), "findings: {f:?}");
}

#[test]
fn hot_path_copy_core_arm_covers_only_flush_and_drain() {
    let src = fixture("hot_path_copy.rs");
    let f = lint_source("core", "fixtures/hot_path_copy.rs", &src);
    assert_eq!(rules(&f), ["hot-path-copy"], "findings: {f:?}");
    // In `core` only the AM batch flush/drain fns are hot paths:
    // send/deliver names are registration-grade there, and drain_smsg's
    // copy carries its copy-ok escape.
    assert_eq!(f.len(), 1, "findings: {f:?}");
    assert!(f[0].msg.contains("am_flush_dst"));
}

#[test]
fn thread_spawn_fixture_fires() {
    let src = fixture("thread_spawn.rs");
    let f = lint_source("gemini-net", "fixtures/thread_spawn.rs", &src);
    assert_eq!(rules(&f), ["thread-outside-parallel"], "findings: {f:?}");
    // spawn, Mutex, AtomicU64, Barrier, mpsc — but NOT the thread-ok:
    // counter and NOT the SpinBarrier identifier (left boundary).
    assert_eq!(f.len(), 5, "findings: {f:?}");
    assert!(f.iter().any(|x| x.msg.contains("std::thread")));
    assert!(f.iter().any(|x| x.msg.contains("`Mutex`")));
    assert!(f.iter().any(|x| x.msg.contains("`Atomic`")));
    assert!(f.iter().any(|x| x.msg.contains("`Barrier`")));
    assert!(f.iter().any(|x| x.msg.contains("`mpsc`")));
    // Whole-word patterns need both boundaries: `BarrierStats` and
    // `mpscish` must not fire (the count above would be 7 otherwise).
}

#[test]
fn thread_rule_exempts_the_parallel_driver() {
    let src = fixture("thread_spawn.rs");
    // Both sanctioned files: the windowed driver and its sync layer.
    for path in [
        "crates/sim-core/src/parallel.rs",
        "crates/sim-core/src/sync.rs",
    ] {
        let f = lint_source("sim-core", path, &src);
        assert!(
            !f.iter().any(|x| x.rule == "thread-outside-parallel"),
            "{path} findings: {f:?}"
        );
    }
}

#[test]
fn spin_loop_fixture_fires() {
    let src = fixture("spin_loop.rs");
    let f = lint_source("sim-core", "fixtures/spin_loop.rs", &src);
    assert_eq!(rules(&f), ["thread-outside-parallel"], "findings: {f:?}");
    // spin_loop (std + core paths) and thread::yield_now — but NOT the
    // thread-ok: probe, and NOT inside longer identifiers.
    assert_eq!(f.len(), 3, "findings: {f:?}");
    assert!(f.iter().any(|x| x.msg.contains("`spin_loop`")));
    assert!(f.iter().any(|x| x.msg.contains("`yield_now`")));
}

#[test]
fn spin_loop_rule_exempts_the_sync_module() {
    let src = fixture("spin_loop.rs");
    let f = lint_source("sim-core", "crates/sim-core/src/sync.rs", &src);
    assert!(
        !f.iter().any(|x| x.rule == "thread-outside-parallel"),
        "findings: {f:?}"
    );
}

#[test]
fn thread_rule_only_applies_to_sim_crates() {
    let src = fixture("thread_spawn.rs");
    // The driver crate (`core`) coordinates the worker pool and may hold
    // atomics; benches and apps thread freely.
    for crate_dir in ["core", "apps", "bench"] {
        let f = lint_source(crate_dir, "fixtures/thread_spawn.rs", &src);
        assert!(
            !f.iter().any(|x| x.rule == "thread-outside-parallel"),
            "{crate_dir} findings: {f:?}"
        );
    }
}

#[test]
fn test_modules_are_exempt() {
    let src = "use std::collections::HashMap;\n\
               pub struct S { m: HashMap<u32, u32> }\n\
               #[cfg(test)]\n\
               mod tests {\n\
                   fn conn_retry() { None::<u32>.unwrap(); }\n\
                   fn f(s: &super::S) { for _ in s.m.keys() {} }\n\
               }\n";
    let f = lint_source("sim-core", "inline.rs", src);
    assert!(f.is_empty(), "findings: {f:?}");
}

#[test]
fn test_exemption_is_brace_accurate() {
    // Code AFTER a `#[cfg(test)]` item is production code again: the
    // exemption covers exactly the attributed item, not the rest of the
    // file.
    let src = "#[cfg(test)]\n\
               mod tests {\n\
                   fn conn_retry() { None::<u32>.unwrap(); }\n\
               }\n\
               pub fn conn_retry() -> u32 { None::<u32>.unwrap() }\n";
    let f = lint_source("sim-core", "inline.rs", src);
    assert_eq!(f.len(), 1, "findings: {f:?}");
    assert_eq!(f[0].rule, "unwrap-in-recovery");
    assert_eq!(f[0].line, 5, "findings: {f:?}");

    // A `#[cfg(test)]` on a single use statement exempts only that line.
    let src2 = "#[cfg(test)]\n\
                use std::time::Instant;\n\
                pub fn later() { let _ = std::time::Duration::ZERO; }\n";
    let f2 = lint_source("sim-core", "inline.rs", src2);
    assert_eq!(f2.len(), 1, "findings: {f2:?}");
    assert_eq!(f2[0].rule, "std-time");
    assert_eq!(f2[0].line, 3, "findings: {f2:?}");
}

#[test]
fn comments_and_strings_do_not_fire() {
    let src = "pub struct S { m: std::collections::HashMap<u32, u32> }\n\
               // for k in self.m.keys() { }\n\
               pub fn msg() -> &'static str { \"m.iter() via std::time\" }\n";
    let f = lint_source("sim-core", "inline.rs", src);
    assert!(f.is_empty(), "findings: {f:?}");
}

#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap();
    let f = lint_workspace(root);
    assert!(
        f.is_empty(),
        "workspace lint findings:\n{}",
        f.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
