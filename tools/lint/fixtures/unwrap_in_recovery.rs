// Fixture: violates the unwrap-in-recovery rule.
pub struct Conn {
    pending: Option<u64>,
}

impl Conn {
    pub fn conn_retry(&mut self) -> u64 {
        // Recovery path: must not abort on a shaken invariant.
        self.pending.unwrap()
    }

    pub fn repost_after_error(&mut self) -> u64 {
        self.pending.expect("no pending transfer")
    }

    // Not a recovery path: unwrap here is out of scope for the rule.
    pub fn fresh_send(&mut self) -> u64 {
        self.pending.unwrap()
    }
}
