// Fixture: violates the charge-category rule — charge_overhead records
// the wrong trace category (Recovery instead of Overhead).
pub enum Kind {
    Overhead,
    Recovery,
}

pub struct Ctx {
    pub trace: Vec<Kind>,
}

impl Ctx {
    pub fn charge_overhead(&mut self, _cost: u64) {
        self.trace.push(Kind::Recovery);
    }

    pub fn charge_recovery(&mut self, _cost: u64) {
        self.trace.push(Kind::Recovery);
    }
}
