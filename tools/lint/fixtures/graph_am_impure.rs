// Fixture: a named fn registered as a typed-AM handler is a worker root
// (the batch dispatch walk runs it inside a parallel window), so the
// impurities behind it must fire `worker-purity` with a witness chain.
// Never compiled; fed to graph::analyze by tools/lint/tests/graph.rs.
use std::sync::Mutex;

static AM_SEED: u32 = 3;

fn tally(x: u32) -> u32 {
    let m = Mutex::new(x);
    *m.lock().expect("poisoned")
}

fn on_ping(x: u32) -> u32 {
    tally(x) + AM_SEED
}

pub fn wire_handlers(c: &mut Cluster) {
    let _id = c.register_am::<u32>(on_ping);
}
