// Fixture: violates the recovery-panic-freedom graph rule — the panic
// sits two calls below the recovery root, where the lexical
// unwrap-in-recovery rule cannot see it. Never compiled.
pub struct Conn {
    seq: Option<u64>,
}

impl Conn {
    fn latest_seq(&self) -> u64 {
        finalize(self.seq)
    }
}

fn finalize(v: Option<u64>) -> u64 {
    v.unwrap()
}

fn validate(v: u64) {
    debug_assert!(v > 0);
}

pub fn recover_link(c: &Conn) -> u64 {
    let s = c.latest_seq();
    validate(s);
    s
}

// Not a recovery path: the unreachable panic below it is out of scope.
pub fn fresh_path(c: &Conn) -> u64 {
    c.seq.unwrap_or(0)
}
