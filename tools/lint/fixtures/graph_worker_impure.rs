// Fixture: violates the worker-purity graph rule three ways (thread
// primitive, serial-only call, static touch) behind one level of helper
// indirection each. Never compiled; fed to graph::analyze by
// tools/lint/tests/graph.rs.
use std::sync::Mutex;

static WORKER_SEED: u32 = 7;

// serial-only: applies effects to shared queues
fn apply_effect(x: u32) -> u32 {
    x + 1
}

fn log_stat(x: u32) -> u32 {
    let m = Mutex::new(x);
    *m.lock().expect("poisoned")
}

fn helper(x: u32) -> u32 {
    log_stat(x)
}

fn read_seed() -> u32 {
    WORKER_SEED
}

pub fn exec_local_event(x: u32) -> u32 {
    let a = helper(x);
    let b = apply_effect(a);
    a + b + read_seed()
}
