// Fixture for the busy-wait arm of `thread-outside-parallel`:
// hand-rolled spinning in a simulation crate outside the sync layer.
// Never compiled.

pub fn poll_until_ready(&self) {
    while !self.ready() {
        std::hint::spin_loop(); // FIRES: busy-wait outside the sync layer
    }
}

pub fn be_polite(&self) {
    thread::yield_now(); // FIRES: scheduler yield outside the sync layer
}

pub fn backoff(&self) {
    core::hint::spin_loop(); // FIRES: core path too
}

pub fn metered_wait(&self) {
    std::hint::spin_loop(); // thread-ok: bounded probe in the host harness
}

pub fn spin_loop_names_are_bounded(s: spin_loops, y: yield_nowish) {
    // Whole-identifier boundaries: the patterns must not fire inside
    // longer identifiers (nor in this fn's own name).
    let _ = (s, y);
}
