// Fixture: exercises every call-resolution form (free, self-method,
// qualified, unknown-receiver method, trait-default dispatch) for the
// call-graph unit tests. Never compiled.
pub struct Widget {
    n: u64,
}

pub trait Runner {
    fn go(&mut self);

    fn run_twice(&mut self) {
        self.go();
        self.go();
    }
}

impl Widget {
    pub fn new(n: u64) -> Widget {
        Widget { n }
    }

    fn step(&mut self) {
        self.n += bump(self.n);
    }

    pub fn tick(&mut self) {
        self.step();
        Widget::reset(self);
    }

    fn reset(&mut self) {
        self.n = 0;
    }
}

impl Runner for Widget {
    fn go(&mut self) {
        self.step();
    }
}

fn bump(x: u64) -> u64 {
    x + 1
}

pub fn drive(w: &mut Widget) {
    w.tick();
}
