// Fixture: violates the charge-coverage graph rule — `on_event` reaches
// a delivery through `forward` with no `charge_*` anywhere on the path,
// while `sync_send`'s path is covered. Never compiled.
pub trait MachineLayer {
    fn sync_send(&mut self, ctx: &mut Ctx);
    fn on_event(&mut self, ctx: &mut Ctx);
}

pub struct Ctx;

impl Ctx {
    pub fn deliver_at(&mut self, _at: u64) {}
    pub fn count_send(&mut self, _bytes: u64) {}
    pub fn charge_wire(&mut self, _ns: u64) {}
}

pub struct ToyLayer;

impl ToyLayer {
    fn forward(&mut self, ctx: &mut Ctx) {
        ctx.deliver_at(5);
    }

    fn covered_send(&mut self, ctx: &mut Ctx) {
        ctx.charge_wire(3);
        ctx.count_send(8);
    }
}

impl MachineLayer for ToyLayer {
    fn sync_send(&mut self, ctx: &mut Ctx) {
        self.covered_send(ctx);
    }

    fn on_event(&mut self, ctx: &mut Ctx) {
        self.forward(ctx);
    }
}
