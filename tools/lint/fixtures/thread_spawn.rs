// Fixture for the `thread-outside-parallel` rule: ad-hoc concurrency in
// a simulation crate outside the parallel driver. Never compiled.

pub fn run_async(&mut self) {
    let h = std::thread::spawn(|| poll_loop()); // FIRES: spawn outside driver
    self.workers.push(h);
}

pub struct Shared {
    inner: Mutex<State>,       // FIRES: lock outside driver
    seq: AtomicU64,            // FIRES: atomic outside driver
    gate: Barrier,             // FIRES
}

pub fn notify(&self) {
    let (tx, rx) = mpsc::channel(); // FIRES
    tx.send(()).ok();
    let _ = rx;
}

pub struct Stats {
    // A counter that never feeds back into virtual time.
    hits: AtomicU64, // thread-ok: host-side profiling only, not simulated state
}

pub fn spin_barrier_name_is_bounded(sb: SpinBarrier) {
    // `SpinBarrier` is one identifier: the `Barrier` pattern must not
    // match inside it (left boundary check).
    let _ = sb;
}

pub fn barrier_stats_name_is_bounded(bs: BarrierStats, ch: mpscish) {
    // Right boundaries too: `Barrier` must not fire inside
    // `BarrierStats`, nor `mpsc` inside `mpscish`.
    let _ = (bs, ch);
}
