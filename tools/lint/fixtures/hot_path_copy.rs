// Fixture for the `hot-path-copy` rule: payload copies inside
// per-message functions of a simulation crate. Never compiled.

pub fn sync_send(&mut self, msg: Bytes) {
    let copy = msg.to_vec(); // FIRES: per-message payload copy
    self.fifo.push(copy);
}

pub fn deliver(&mut self, buf: &[u8]) {
    let mut dst = vec![0u8; buf.len()];
    dst.copy_from_slice(buf); // FIRES
    self.inbox.push(Bytes::from(vec![0u8; 8])); // FIRES: per-message alloc
}

pub fn am_flush_dst(&mut self) {
    let batch = self.buf.to_vec(); // FIRES: batch flush is a hot path in sim and core
    self.outbox.push(batch);
}

pub fn drain_smsg(&mut self) {
    let framed = self.hdr.to_vec(); // copy-ok: 8-byte mailbox frame header
    self.rx.push(framed);
}

pub fn setup_buffers(&mut self) {
    // Not a hot-path function name: copies at init time are fine.
    self.pool = self.seed.to_vec();
}

pub fn send_count_report(&self) -> Vec<u64> {
    // `send_count` is a counter compound, not a per-message verb: the
    // `send` keyword segment is excluded when a counter noun follows it.
    self.send_counts.to_vec()
}

pub fn resend_window(&self) -> Vec<u8> {
    // `resend` does not contain `send` as a `_`-separated segment.
    self.window.to_vec()
}
