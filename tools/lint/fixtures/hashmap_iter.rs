// Fixture: violates the hashmap-iter rule (not compiled into the
// workspace; fed to the linter by tools/lint/tests/lint.rs).
use std::collections::{HashMap, HashSet};

pub struct Table {
    pending: HashMap<u64, u32>,
}

impl Table {
    pub fn total(&self) -> u32 {
        let mut sum = 0;
        for (_, v) in self.pending.iter() {
            sum += v;
        }
        sum
    }

    pub fn drop_all(&mut self) {
        for k in self.pending.keys() {
            let _ = k;
        }
    }
}

pub fn union(a: HashSet<u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for v in &a {
        out.push(*v);
    }
    out
}
