// Fixture: the unwrap-in-recovery rule also covers the fault-tolerance
// restore/checkpoint paths (a shaken invariant mid-recovery must surface
// as a finding, not abort the run).
pub struct Wave {
    snap: Option<Vec<u8>>,
}

impl Wave {
    pub fn restore_snapshot(&mut self) -> Vec<u8> {
        self.snap.take().unwrap()
    }

    pub fn take_checkpoint(&mut self) -> usize {
        self.snap.as_ref().expect("no snapshot").len()
    }

    // Not a recovery path: unwrap here is out of scope for the rule.
    pub fn fresh_wave(&mut self) -> usize {
        self.snap.as_ref().unwrap().len()
    }
}
