//! Project-invariant lints the compiler can't express (DESIGN.md §8).
//!
//! Run as `cargo run -p lint-pass`. Exit status is nonzero when any rule
//! fires, so CI can gate on it. The pass is a hand-rolled lexical
//! analysis (the build environment is offline, so no `syn`): sources are
//! sanitized — comments and string/char literal *contents* blanked,
//! line structure preserved — and then scanned line-by-line with brace
//! tracking for function spans.
//!
//! Rules:
//!
//! * **hashmap-iter** — no `HashMap`/`HashSet` iteration in the
//!   simulation crates (`sim-core`, `gemini-net`, `ugni`, `lrts-ugni`,
//!   `lrts-mpi`, `mpi-sim`). Hash iteration order is arbitrary; one
//!   nondeterministically ordered event loop breaks the bit-for-bit
//!   replay guarantee every figure rests on. Use `BTreeMap` or a
//!   `Vec`-indexed table when order can leak into behavior.
//! * **unwrap-in-recovery** — no `.unwrap()` / `.expect(` inside
//!   fault-recovery functions (name contains `retry`, `resync`,
//!   `repost`, `recover`, `fallback` or `reap`). Recovery code runs
//!   precisely when invariants are shaken; it must degrade, not abort.
//! * **std-time** — no `std::time` / `Instant` / `SystemTime` in
//!   simulation crates. Virtual time is the only clock; a wall-clock
//!   read is nondeterminism by definition.
//! * **charge-category** — every `fn charge_<x>` definition in
//!   `crates/core` must record the matching `Kind::<X>` trace category,
//!   so cost accounting and the trace stay in sync.
//! * **hot-path-copy** — no `.to_vec()` / `.to_owned()` /
//!   `copy_from_slice(` / `Bytes::from(vec!` inside per-message
//!   functions (name contains `send`, `deliver`, `recv`, `post`,
//!   `progress` or `drain`) of the simulation crates. Payloads travel
//!   as refcounted `Bytes`; a host-side copy per message is exactly the
//!   cost the zero-copy fast path removed. Deliberate copies (e.g.
//!   framing a small mailbox message) carry a `// copy-ok: <why>`
//!   comment on the same line.
//! * **thread-outside-parallel** — no `std::thread` / `std::sync`
//!   concurrency (spawns, locks, atomics, channels) in the simulation
//!   crates outside `sim-core/src/parallel.rs`. All parallelism flows
//!   through the conservative windowed driver, whose determinism proof
//!   depends on it being the *only* source of cross-thread interleaving;
//!   an ad-hoc lock or atomic elsewhere reintroduces scheduling
//!   nondeterminism the differential tests cannot see. Deliberate uses
//!   (e.g. a lock-free stat counter that provably never feeds back into
//!   virtual time) carry a `// thread-ok: <why>` comment on the line.
//!
//! Test modules (`#[cfg(test)]`, by repo convention at the end of the
//! file) are exempt from all rules.

use std::fmt;
use std::path::{Path, PathBuf};

/// Directory names (under `crates/`) of the deterministic simulation
/// crates: everything that executes during a simulated run.
pub const SIM_CRATES: &[&str] = &[
    "sim-core",
    "gemini-net",
    "ugni",
    "lrts-ugni",
    "lrts-mpi",
    "mpi-sim",
];

/// Function-name fragments that mark fault-recovery code paths.
pub const RECOVERY_KEYWORDS: &[&str] = &[
    "retry",
    "resync",
    "repost",
    "recover",
    "fallback",
    "reap",
    "restore",
    "checkpoint",
];

/// Function-name fragments that mark per-message hot paths: code that
/// runs once per simulated message and must not copy payload bytes.
pub const HOT_PATH_KEYWORDS: &[&str] = &["send", "deliver", "recv", "post", "progress", "drain"];

/// Payload-copying constructs banned in hot paths (see `hot-path-copy`).
const COPY_PATTERNS: &[&str] = &[
    ".to_vec()",
    ".to_owned()",
    "copy_from_slice(",
    "Bytes::from(vec!",
];

/// Marker comment that exempts one line from `hot-path-copy`.
pub const COPY_OK_MARKER: &str = "copy-ok:";

/// Threading/synchronization constructs banned in simulation crates
/// outside the parallel driver (see `thread-outside-parallel`).
const THREAD_PATTERNS: &[&str] = &[
    "std::thread",
    "thread::spawn",
    "Mutex",
    "RwLock",
    "Condvar",
    "Barrier",
    "mpsc",
    "Atomic",
];

/// Marker comment that exempts one line from `thread-outside-parallel`.
pub const THREAD_OK_MARKER: &str = "thread-ok:";

/// The one file where threads, locks, and atomics are legitimate: the
/// conservative parallel driver itself.
pub const PARALLEL_DRIVER_FILE: &str = "sim-core/src/parallel.rs";

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// Blank comments and string/char literal contents, preserving line
/// structure, so later passes can match tokens and count braces without
/// being fooled by `"}"` or `// HashMap.iter()`.
fn sanitize(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            '/' if i + 1 < b.len() && b[i + 1] == '/' => {
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < b.len() && b[i + 1] == '*' => {
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == '\n' {
                            out.push('\n');
                        }
                        i += 1;
                    }
                }
            }
            '"' => {
                out.push('"');
                i += 1;
                while i < b.len() && b[i] != '"' {
                    if b[i] == '\\' {
                        i += 1;
                    }
                    if i < b.len() {
                        if b[i] == '\n' {
                            out.push('\n');
                        }
                        i += 1;
                    }
                }
                if i < b.len() {
                    out.push('"');
                    i += 1;
                }
            }
            'r' if i + 1 < b.len() && (b[i + 1] == '"' || b[i + 1] == '#') => {
                // Raw string: r"..." or r#"..."# (any hash count).
                let mut j = i + 1;
                let mut hashes = 0;
                while j < b.len() && b[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == '"' {
                    j += 1;
                    'raw: while j < b.len() {
                        if b[j] == '"' {
                            let mut k = j + 1;
                            let mut seen = 0;
                            while k < b.len() && b[k] == '#' && seen < hashes {
                                seen += 1;
                                k += 1;
                            }
                            if seen == hashes {
                                j = k;
                                break 'raw;
                            }
                        }
                        if b[j] == '\n' {
                            out.push('\n');
                        }
                        j += 1;
                    }
                    out.push('"');
                    out.push('"');
                    i = j;
                } else {
                    out.push('r');
                    i += 1;
                }
            }
            '\'' => {
                // Char literal vs lifetime. A char literal closes within
                // a couple of chars; a lifetime never closes.
                if i + 2 < b.len() && b[i + 1] == '\\' {
                    let mut j = i + 2;
                    while j < b.len() && b[j] != '\'' && j - i < 12 {
                        j += 1;
                    }
                    out.push_str("' '");
                    i = if j < b.len() { j + 1 } else { j };
                } else if i + 2 < b.len() && b[i + 2] == '\'' {
                    out.push_str("' '");
                    i += 3;
                } else {
                    out.push('\'');
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Extract the identifier ending right before byte offset `end` (exclusive).
fn ident_ending_at(line: &str, end: usize) -> Option<&str> {
    let head = &line[..end];
    let start = head
        .rfind(|c: char| !is_ident_char(c))
        .map(|p| p + 1)
        .unwrap_or(0);
    let id = &head[start..];
    if id.is_empty() || id.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(id)
    }
}

/// Names in this file bound to a `HashMap`/`HashSet` (fields, lets,
/// params): `name: HashMap<..>` and `let name = HashMap::new()` forms.
fn hash_bound_names(lines: &[&str]) -> Vec<String> {
    let mut names = Vec::new();
    for line in lines {
        for ty in ["HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(pos) = line[from..].find(ty) {
                let at = from + pos;
                from = at + ty.len();
                // `name: HashMap<` (possibly through a path prefix).
                let before = line[..at].trim_end_matches(|c: char| {
                    is_ident_char(c) || c == ':' || c == '<' || c == ' '
                });
                // Walk back over `: path::` to the binding `name:`.
                if let Some(colon) = line[..at].rfind(':') {
                    let lhs = line[..colon].trim_end();
                    // Skip `::` path separators: binding colon is single.
                    if !lhs.ends_with(':') && !line[colon..].starts_with("::") {
                        if let Some(id) = ident_ending_at(line, lhs.len() + (colon - lhs.len())) {
                            if !matches!(id, "use" | "collections" | "std") {
                                names.push(id.to_string());
                            }
                        }
                    }
                }
                // `let [mut] name = HashMap::new()` / `with_capacity`.
                if let Some(eq) = line[..at].rfind('=') {
                    let lhs = line[..eq].trim_end();
                    if let Some(id) = ident_ending_at(line, lhs.len()) {
                        if id != "mut" {
                            names.push(id.to_string());
                        } else if let Some(id2) = ident_ending_at(lhs, lhs.len()) {
                            names.push(id2.to_string());
                        }
                    }
                }
                let _ = before;
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
];

/// Does `line` iterate over hash-bound `name`?
fn iterates(line: &str, name: &str) -> bool {
    // `name.iter()` and friends, with an identifier boundary before.
    let mut from = 0;
    while let Some(pos) = line[from..].find(name) {
        let at = from + pos;
        from = at + name.len();
        let pre_ok = at == 0
            || !is_ident_char(line[..at].chars().next_back().unwrap())
                && !line[..at].ends_with("Kind::");
        if !pre_ok {
            continue;
        }
        let rest = &line[at + name.len()..];
        if ITER_METHODS.iter().any(|m| rest.starts_with(m)) {
            return true;
        }
    }
    // `for x in [&[mut]] [self.]name {`
    if let Some(fpos) = line.find("for ") {
        if let Some(inpos) = line[fpos..].find(" in ") {
            let mut tail = line[fpos + inpos + 4..].trim_start();
            for p in ["&mut ", "&", "self."] {
                tail = tail.strip_prefix(p).unwrap_or(tail);
            }
            if let Some(rest) = tail.strip_prefix(name) {
                let boundary = rest
                    .chars()
                    .next()
                    .is_none_or(|c| !is_ident_char(c) && c != '.');
                if boundary {
                    return true;
                }
            }
        }
    }
    false
}

/// CamelCase a snake_case suffix: `overhead` → `Overhead`,
/// `cache_miss` → `CacheMiss`.
fn camel(s: &str) -> String {
    s.split('_')
        .filter(|p| !p.is_empty())
        .map(|p| {
            let mut c = p.chars();
            match c.next() {
                Some(f) => f.to_ascii_uppercase().to_string() + c.as_str(),
                None => String::new(),
            }
        })
        .collect()
}

/// Function spans `(name, first_line_idx, last_line_idx)` in sanitized
/// lines, found by brace counting from each `fn` keyword.
fn fn_spans(lines: &[&str]) -> Vec<(String, usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        let line = lines[i];
        if let Some(pos) = find_fn_kw(line) {
            let after = &line[pos + 3..];
            let name: String = after
                .trim_start()
                .chars()
                .take_while(|&c| is_ident_char(c))
                .collect();
            if !name.is_empty() {
                // Find the opening brace, then its close.
                let mut depth = 0i32;
                let mut opened = false;
                let mut j = i;
                'span: while j < lines.len() {
                    let scan = if j == i { &lines[j][pos..] } else { lines[j] };
                    for c in scan.chars() {
                        match c {
                            '{' => {
                                depth += 1;
                                opened = true;
                            }
                            '}' => depth -= 1,
                            // `fn f();` in a trait: no body.
                            ';' if !opened => break 'span,
                            _ => {}
                        }
                    }
                    if opened && depth <= 0 {
                        break;
                    }
                    j += 1;
                }
                if opened {
                    spans.push((name, i, j.min(lines.len() - 1)));
                }
            }
        }
        i += 1;
    }
    spans
}

fn find_fn_kw(line: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(pos) = line[from..].find("fn ") {
        let at = from + pos;
        from = at + 3;
        let pre_ok = at == 0 || !is_ident_char(line[..at].chars().next_back().unwrap());
        if pre_ok {
            return Some(at);
        }
    }
    None
}

/// Line index of the first `#[cfg(test)]` (test modules sit at the end
/// of files by repo convention); findings from there on are exempt.
fn test_mod_start(lines: &[&str]) -> usize {
    lines
        .iter()
        .position(|l| l.contains("#[cfg(test)]"))
        .unwrap_or(lines.len())
}

/// Lint one source file. `crate_dir` is the directory name under
/// `crates/` (e.g. `sim-core`, `core`); `file` is the path used in
/// findings.
pub fn lint_source(crate_dir: &str, file: &str, src: &str) -> Vec<Finding> {
    let clean = sanitize(src);
    let lines: Vec<&str> = clean.lines().collect();
    let cutoff = test_mod_start(&lines);
    let mut out = Vec::new();
    let sim = SIM_CRATES.contains(&crate_dir);

    if sim {
        // hashmap-iter
        let names = hash_bound_names(&lines[..cutoff]);
        for (idx, line) in lines[..cutoff].iter().enumerate() {
            for name in &names {
                if iterates(line, name) {
                    out.push(Finding {
                        rule: "hashmap-iter",
                        file: file.to_string(),
                        line: idx + 1,
                        msg: format!(
                            "iteration over hash-ordered `{name}` — order is \
                             nondeterministic; use BTreeMap/Vec indexing"
                        ),
                    });
                }
            }
        }
        // hot-path-copy: the marker lives in a comment, so it must be
        // looked up on the raw (unsanitized) line.
        let raw_lines: Vec<&str> = src.lines().collect();
        for (name, a, b) in fn_spans(&lines) {
            if a >= cutoff {
                continue;
            }
            if !HOT_PATH_KEYWORDS.iter().any(|k| name.contains(k)) {
                continue;
            }
            let end = b.min(cutoff.saturating_sub(1));
            for (idx, line) in lines.iter().enumerate().take(end + 1).skip(a) {
                let Some(pat) = COPY_PATTERNS.iter().find(|p| line.contains(**p)) else {
                    continue;
                };
                if raw_lines
                    .get(idx)
                    .is_some_and(|r| r.contains(COPY_OK_MARKER))
                {
                    continue;
                }
                out.push(Finding {
                    rule: "hot-path-copy",
                    file: file.to_string(),
                    line: idx + 1,
                    msg: format!(
                        "`{pat}` in per-message path `{name}` — payloads travel as \
                         refcounted Bytes; mark a deliberate copy with `// copy-ok: <why>`"
                    ),
                });
            }
        }
        // thread-outside-parallel: the parallel driver file itself is the
        // sanctioned home for every one of these constructs.
        if !file.replace('\\', "/").ends_with(PARALLEL_DRIVER_FILE) {
            let raw_lines: Vec<&str> = src.lines().collect();
            for (idx, line) in lines[..cutoff].iter().enumerate() {
                let Some(pat) = THREAD_PATTERNS.iter().find(|p| {
                    let mut from = 0;
                    while let Some(pos) = line[from..].find(**p) {
                        let at = from + pos;
                        from = at + p.len();
                        // Identifier boundary on the left, so e.g.
                        // `SpinBarrier` doesn't double-fire via `Barrier`.
                        if at == 0 || !is_ident_char(line[..at].chars().next_back().unwrap()) {
                            return true;
                        }
                    }
                    false
                }) else {
                    continue;
                };
                if raw_lines
                    .get(idx)
                    .is_some_and(|r| r.contains(THREAD_OK_MARKER))
                {
                    continue;
                }
                out.push(Finding {
                    rule: "thread-outside-parallel",
                    file: file.to_string(),
                    line: idx + 1,
                    msg: format!(
                        "`{pat}` in a simulation crate outside the parallel driver — \
                         all concurrency lives in sim-core/src/parallel.rs; mark a \
                         deliberate exception with `// thread-ok: <why>`"
                    ),
                });
            }
        }
        // std-time
        for (idx, line) in lines[..cutoff].iter().enumerate() {
            for pat in ["std::time", "Instant::now", "SystemTime"] {
                if line.contains(pat) {
                    out.push(Finding {
                        rule: "std-time",
                        file: file.to_string(),
                        line: idx + 1,
                        msg: format!(
                            "`{pat}` in a simulation crate — virtual time is the only clock"
                        ),
                    });
                    break;
                }
            }
        }
    }

    if sim || crate_dir == "core" {
        // unwrap-in-recovery
        for (name, a, b) in fn_spans(&lines) {
            if a >= cutoff {
                continue;
            }
            if !RECOVERY_KEYWORDS.iter().any(|k| name.contains(k)) {
                continue;
            }
            for (idx, line) in lines.iter().enumerate().take(b.min(cutoff - 1) + 1).skip(a) {
                if line.contains(".unwrap()") || line.contains(".expect(") {
                    out.push(Finding {
                        rule: "unwrap-in-recovery",
                        file: file.to_string(),
                        line: idx + 1,
                        msg: format!(
                            "unwrap/expect inside recovery path `{name}` — recovery \
                             code must degrade, not abort"
                        ),
                    });
                }
            }
        }
    }

    if crate_dir == "core" {
        // charge-category
        for (name, a, b) in fn_spans(&lines) {
            if a >= cutoff {
                continue;
            }
            let Some(suffix) = name.strip_prefix("charge_") else {
                continue;
            };
            if suffix.is_empty() {
                continue;
            }
            let want = format!("Kind::{}", camel(suffix));
            let body = lines[a..=b.min(lines.len() - 1)].join("\n");
            if !body.contains(&want) {
                out.push(Finding {
                    rule: "charge-category",
                    file: file.to_string(),
                    line: a + 1,
                    msg: format!("`fn {name}` does not record trace category `{want}`"),
                });
            }
        }
    }

    out
}

/// Recursively collect `.rs` files under `dir`.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = rd.flatten().map(|e| e.path()).collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            rs_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Lint every simulation crate (plus `core`) under `<root>/crates`.
pub fn lint_workspace(root: &Path) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut dirs: Vec<&str> = SIM_CRATES.to_vec();
    dirs.push("core");
    for dir in dirs {
        let src = root.join("crates").join(dir).join("src");
        let mut files = Vec::new();
        rs_files(&src, &mut files);
        for f in files {
            let Ok(text) = std::fs::read_to_string(&f) else {
                continue;
            };
            let rel = f
                .strip_prefix(root)
                .unwrap_or(&f)
                .to_string_lossy()
                .into_owned();
            out.extend(lint_source(dir, &rel, &text));
        }
    }
    out
}
