//! Project-invariant lints the compiler can't express (DESIGN.md §8, §12).
//!
//! Run as `cargo run -p lint-pass`. Exit status is nonzero when any rule
//! fires, so CI can gate on it. The pass is a hand-rolled analysis (the
//! build environment is offline, so no `syn`): sources are sanitized —
//! comments and string/char literal *contents* blanked, line structure
//! preserved — and then scanned with brace tracking for function spans.
//!
//! Two layers of analysis:
//!
//! * **Lexical rules** (this module) look at one function or one line at a
//!   time.
//! * **Graph rules** ([`graph`]) parse every `fn`/`impl` in the workspace
//!   into a call graph resolved by a conservative name+receiver heuristic
//!   and check *transitive* properties — worker purity, recovery
//!   panic-freedom, charge coverage — reporting witness call-chains.
//!
//! Lexical rules:
//!
//! * **hashmap-iter** — no `HashMap`/`HashSet` iteration in the
//!   simulation crates (`sim-core`, `gemini-net`, `ugni`, `lrts-ugni`,
//!   `lrts-mpi`, `mpi-sim`) nor in the self-hosted tool crates
//!   (`ugni-verify`, `lint`). Hash iteration order is arbitrary; one
//!   nondeterministically ordered event loop breaks the bit-for-bit
//!   replay guarantee every figure rests on, and a hash-ordered lint
//!   report breaks CI artifact diffing. Use `BTreeMap` or a
//!   `Vec`-indexed table when order can leak into behavior.
//!   Escape: `// hash-ok: <why>`.
//! * **unwrap-in-recovery** — no `.unwrap()` / `.expect(` inside
//!   fault-recovery functions (name has a `_`-segment equal to `retry`,
//!   `resync`, `repost`, `recover`, `recovery`, `fallback`, `reap`,
//!   `restore` or `checkpoint`). Recovery code runs precisely when
//!   invariants are shaken; it must degrade, not abort. The graph pass
//!   upgrades this rule to full reachability (`recovery-panic-freedom`).
//!   Escape: `// panic-ok: <why>`.
//! * **std-time** — no `std::time` / `Instant` / `SystemTime` in
//!   simulation crates. Virtual time is the only clock; a wall-clock
//!   read is nondeterminism by definition. Escape: `// time-ok: <why>`.
//! * **charge-category** — every `fn charge_<x>` definition in
//!   `crates/core` must record the matching `Kind::<X>` trace category,
//!   so cost accounting and the trace stay in sync.
//! * **hot-path-copy** — no `.to_vec()` / `.to_owned()` /
//!   `copy_from_slice(` / `Bytes::from(vec!` inside per-message
//!   functions (name has a `_`-segment equal to `send`, `deliver`,
//!   `recv`, `post`, `progress`, `drain` or `flush`, and the segment is
//!   not a counter compound like `send_count`) of the simulation crates.
//!   Payloads travel as refcounted `Bytes`; a host-side copy per message
//!   is exactly the cost the zero-copy fast path removed. In
//!   `crates/core` the rule covers only `flush`/`drain` functions — the
//!   AM aggregation engine's batch hot path, whose buffer recycling a
//!   copy would silently defeat. Deliberate copies carry a
//!   `// copy-ok: <why>` comment on the same line.
//! * **thread-outside-parallel** — no `std::thread` / `std::sync`
//!   concurrency (spawns, locks, atomics, channels) in the simulation
//!   crates outside `sim-core/src/parallel.rs`. All parallelism flows
//!   through the conservative windowed driver, whose determinism proof
//!   depends on it being the *only* source of cross-thread interleaving.
//!   Patterns match on identifier boundaries, so `SpinBarrier` or a
//!   `BarrierStats` type never fires via `Barrier`. Deliberate uses
//!   carry a `// thread-ok: <why>` comment on the line.
//!
//! `#[cfg(test)]` regions are exempt from all rules. The exemption is
//! brace-accurate: it covers exactly the item (module, fn, impl) the
//! attribute is attached to, not "everything to the end of the file".

use std::fmt;
use std::path::{Path, PathBuf};

pub mod graph;

/// Directory names (under `crates/`) of the deterministic simulation
/// crates: everything that executes during a simulated run.
pub const SIM_CRATES: &[&str] = &[
    "sim-core",
    "gemini-net",
    "ugni",
    "lrts-ugni",
    "lrts-mpi",
    "mpi-sim",
];

/// Crates the pass self-hosts over: the lint tool itself and the uGNI
/// contract verifier. Both must themselves be deterministic (the verifier
/// runs inside simulated jobs; the linter's finding order feeds a CI
/// artifact), so the order-sensitive lexical rules apply to them too.
pub const SELF_HOST_CRATES: &[&str] = &["ugni-verify", "lint"];

/// Function-name fragments that mark fault-recovery code paths. Matched
/// against `_`-separated name segments (`repost_after_error` matches
/// `repost`; `sender_loop` does not match `send`).
pub const RECOVERY_KEYWORDS: &[&str] = &[
    "retry",
    "resync",
    "repost",
    "recover",
    "recovery",
    "fallback",
    "reap",
    "restore",
    "checkpoint",
];

/// Function-name fragments that mark per-message hot paths: code that
/// runs once per simulated message and must not copy payload bytes.
pub const HOT_PATH_KEYWORDS: &[&str] = &[
    "send", "deliver", "recv", "post", "progress", "drain", "flush",
];

/// The subset of hot-path verbs checked in `crates/core`: the AM
/// aggregation engine's flush/drain functions run once per *batch* on the
/// critical path, and their whole point is recycling buffers instead of
/// allocating — a payload copy there silently undoes the optimization.
/// The rest of `core` (registration, config, reporting) is setup code
/// where copies are fine, so the full sim-crate keyword list stays off.
pub const CORE_HOT_PATH_KEYWORDS: &[&str] = &["flush", "drain"];

/// Segments that turn a matched keyword into a *counter/reporting* name
/// rather than a hot-path verb: `send_count`, `recv_stats` and friends
/// read accounting, they do not move a message.
const COUNTER_SEGMENTS: &[&str] = &[
    "count", "counts", "counter", "stat", "stats", "total", "totals", "rate", "len",
];

/// Payload-copying constructs banned in hot paths (see `hot-path-copy`).
const COPY_PATTERNS: &[&str] = &[
    ".to_vec()",
    ".to_owned()",
    "copy_from_slice(",
    "Bytes::from(vec!",
];

/// Marker comment that exempts one line from `hot-path-copy`.
pub const COPY_OK_MARKER: &str = "copy-ok:";

/// Marker comment that exempts one line from `hashmap-iter`.
pub const HASH_OK_MARKER: &str = "hash-ok:";

/// Marker comment that exempts one line from `std-time`.
pub const TIME_OK_MARKER: &str = "time-ok:";

/// Marker comment that exempts one line from `unwrap-in-recovery` and the
/// graph pass's `recovery-panic-freedom`.
pub const PANIC_OK_MARKER: &str = "panic-ok:";

/// Threading/synchronization constructs banned in simulation crates
/// outside the parallel driver (see `thread-outside-parallel`). The
/// `bool` is `true` when the pattern is a complete identifier that must
/// match on both boundaries (`Barrier` must not fire inside
/// `SpinBarrier` or `BarrierStats`); prefix patterns (`Atomic` covering
/// `AtomicU64`/`AtomicBool`/..., the `std::thread` paths) only require a
/// left identifier boundary.
pub(crate) const THREAD_PATTERNS: &[(&str, bool)] = &[
    ("std::thread", false),
    ("thread::spawn", false),
    ("Mutex", true),
    ("RwLock", true),
    ("Condvar", true),
    ("Barrier", true),
    ("mpsc", true),
    ("Atomic", false),
    // Busy-wait primitives: hand-rolled spinning belongs in the adaptive
    // barrier (sync.rs), nowhere else — an unbounded spin loop is exactly
    // the oversubscription pathology the barrier exists to prevent.
    ("spin_loop", true),
    ("yield_now", true),
];

/// Marker comment that exempts one line from `thread-outside-parallel`.
pub const THREAD_OK_MARKER: &str = "thread-ok:";

/// The files where threads, locks, atomics, and spin loops are
/// legitimate: the conservative parallel driver and its sync layer (the
/// adaptive barrier + persistent worker pool).
pub const PARALLEL_DRIVER_FILES: &[&str] = &["sim-core/src/parallel.rs", "sim-core/src/sync.rs"];

/// Whether `path` is one of the sanctioned concurrency files
/// ([`PARALLEL_DRIVER_FILES`]).
pub fn is_parallel_driver_file(path: &str) -> bool {
    let p = path.replace('\\', "/");
    PARALLEL_DRIVER_FILES.iter().any(|f| p.ends_with(f))
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub msg: String,
    /// Witness call chain for graph rules (root first), empty for lexical
    /// rules. Each entry is a pre-rendered `name (file:line)` hop.
    pub chain: Vec<String>,
}

impl Finding {
    pub fn new(rule: &'static str, file: &str, line: usize, msg: String) -> Self {
        Finding {
            rule,
            file: file.to_string(),
            line,
            msg,
            chain: Vec::new(),
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )?;
        for (i, hop) in self.chain.iter().enumerate() {
            write!(f, "\n    {}{}", if i == 0 { "via " } else { " -> " }, hop)?;
        }
        Ok(())
    }
}

/// Serialize findings as a machine-readable JSON report (CI artifact).
/// Hand-rolled — the build environment is offline, so no serde here.
pub fn report_json(findings: &[Finding]) -> String {
    fn esc(s: &str) -> String {
        let mut o = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => o.push_str("\\\""),
                '\\' => o.push_str("\\\\"),
                '\n' => o.push_str("\\n"),
                '\t' => o.push_str("\\t"),
                c if (c as u32) < 0x20 => o.push_str(&format!("\\u{:04x}", c as u32)),
                c => o.push(c),
            }
        }
        o
    }
    let mut out = String::from("{\n  \"schema\": 1,\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"msg\": \"{}\", \"chain\": [{}]}}{}\n",
            esc(f.rule),
            esc(&f.file),
            f.line,
            esc(&f.msg),
            f.chain
                .iter()
                .map(|h| format!("\"{}\"", esc(h)))
                .collect::<Vec<_>>()
                .join(", "),
            if i + 1 == findings.len() { "" } else { "," }
        ));
    }
    out.push_str(&format!("  ],\n  \"count\": {}\n}}\n", findings.len()));
    out
}

/// Blank comments and string/char literal contents, preserving line
/// structure, so later passes can match tokens and count braces without
/// being fooled by `"}"` or `// HashMap.iter()`.
pub(crate) fn sanitize(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            '/' if i + 1 < b.len() && b[i + 1] == '/' => {
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < b.len() && b[i + 1] == '*' => {
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == '\n' {
                            out.push('\n');
                        }
                        i += 1;
                    }
                }
            }
            '"' => {
                out.push('"');
                i += 1;
                while i < b.len() && b[i] != '"' {
                    if b[i] == '\\' {
                        i += 1;
                    }
                    if i < b.len() {
                        if b[i] == '\n' {
                            out.push('\n');
                        }
                        i += 1;
                    }
                }
                if i < b.len() {
                    out.push('"');
                    i += 1;
                }
            }
            'r' if i + 1 < b.len() && (b[i + 1] == '"' || b[i + 1] == '#') => {
                // Raw string: r"..." or r#"..."# (any hash count).
                let mut j = i + 1;
                let mut hashes = 0;
                while j < b.len() && b[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == '"' {
                    j += 1;
                    'raw: while j < b.len() {
                        if b[j] == '"' {
                            let mut k = j + 1;
                            let mut seen = 0;
                            while k < b.len() && b[k] == '#' && seen < hashes {
                                seen += 1;
                                k += 1;
                            }
                            if seen == hashes {
                                j = k;
                                break 'raw;
                            }
                        }
                        if b[j] == '\n' {
                            out.push('\n');
                        }
                        j += 1;
                    }
                    out.push('"');
                    out.push('"');
                    i = j;
                } else {
                    out.push('r');
                    i += 1;
                }
            }
            '\'' => {
                // Char literal vs lifetime. A char literal closes within
                // a couple of chars; a lifetime never closes.
                if i + 2 < b.len() && b[i + 1] == '\\' {
                    let mut j = i + 2;
                    while j < b.len() && b[j] != '\'' && j - i < 12 {
                        j += 1;
                    }
                    out.push_str("' '");
                    i = if j < b.len() { j + 1 } else { j };
                } else if i + 2 < b.len() && b[i + 2] == '\'' {
                    out.push_str("' '");
                    i += 3;
                } else {
                    out.push('\'');
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

pub(crate) fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Extract the identifier ending right before byte offset `end` (exclusive).
fn ident_ending_at(line: &str, end: usize) -> Option<&str> {
    let head = &line[..end];
    let start = head
        .rfind(|c: char| !is_ident_char(c))
        .map(|p| p + 1)
        .unwrap_or(0);
    let id = &head[start..];
    if id.is_empty() || id.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(id)
    }
}

/// Does snake_case `name` contain `kw` as a complete `_`-separated
/// segment? Substrings never match (`sender` vs `send`, `resend` vs
/// `send`), and a keyword segment directly followed by a counter noun
/// (`send_count`) is treated as accounting, not a hot-path verb.
pub fn name_has_keyword(name: &str, kw: &str) -> bool {
    let segs: Vec<&str> = name.split('_').collect();
    segs.iter().enumerate().any(|(i, s)| {
        *s == kw
            && segs
                .get(i + 1)
                .is_none_or(|next| !COUNTER_SEGMENTS.contains(next))
    })
}

/// Does `line` contain `pat` starting at an identifier boundary (and, for
/// whole-word patterns, ending at one)?
pub(crate) fn boundary_match(line: &str, pat: &str, whole_word: bool) -> bool {
    let mut from = 0;
    while let Some(pos) = line[from..].find(pat) {
        let at = from + pos;
        from = at + pat.len();
        let left_ok = line[..at]
            .chars()
            .next_back()
            .is_none_or(|c| !is_ident_char(c));
        let right_ok = !whole_word
            || line[at + pat.len()..]
                .chars()
                .next()
                .is_none_or(|c| !is_ident_char(c));
        if left_ok && right_ok {
            return true;
        }
    }
    false
}

/// Names in this file bound to a `HashMap`/`HashSet` (fields, lets,
/// params): `name: HashMap<..>` and `let name = HashMap::new()` forms.
fn hash_bound_names(lines: &[&str]) -> Vec<String> {
    let mut names = Vec::new();
    for line in lines {
        for ty in ["HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(pos) = line[from..].find(ty) {
                let at = from + pos;
                from = at + ty.len();
                let head = &line[..at];
                // `name: HashMap<` — the *binding* colon is single; the
                // `::` of a path prefix (`std::collections::HashMap`) is
                // not. Scan right-to-left for the rightmost single colon.
                let bind_colon = head
                    .char_indices()
                    .rev()
                    .filter(|&(_, c)| c == ':')
                    .find(|&(i, _)| !head[..i].ends_with(':') && !head[i + 1..].starts_with(':'))
                    .map(|(i, _)| i);
                if let Some(colon) = bind_colon {
                    let lhs = head[..colon].trim_end();
                    if let Some(id) = ident_ending_at(line, lhs.len()) {
                        names.push(id.to_string());
                    }
                }
                // `let [mut] name = HashMap::new()` / `with_capacity`.
                if let Some(eq) = head.rfind('=') {
                    let lhs = head[..eq].trim_end();
                    if let Some(id) = ident_ending_at(line, lhs.len()) {
                        names.push(id.to_string());
                    }
                }
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
];

/// Does `line` iterate over hash-bound `name`?
fn iterates(line: &str, name: &str) -> bool {
    // `name.iter()` and friends, with an identifier boundary before.
    let mut from = 0;
    while let Some(pos) = line[from..].find(name) {
        let at = from + pos;
        from = at + name.len();
        let pre_ok = at == 0 || !is_ident_char(line[..at].chars().next_back().unwrap());
        if !pre_ok {
            continue;
        }
        let rest = &line[at + name.len()..];
        if ITER_METHODS.iter().any(|m| rest.starts_with(m)) {
            return true;
        }
    }
    // `for x in [&[mut]] [self.]name {`
    if let Some(fpos) = line.find("for ") {
        if let Some(inpos) = line[fpos..].find(" in ") {
            let mut tail = line[fpos + inpos + 4..].trim_start();
            for p in ["&mut ", "&", "self."] {
                tail = tail.strip_prefix(p).unwrap_or(tail);
            }
            if let Some(rest) = tail.strip_prefix(name) {
                let boundary = rest
                    .chars()
                    .next()
                    .is_none_or(|c| !is_ident_char(c) && c != '.');
                if boundary {
                    return true;
                }
            }
        }
    }
    false
}

/// CamelCase a snake_case suffix: `overhead` → `Overhead`,
/// `cache_miss` → `CacheMiss`.
fn camel(s: &str) -> String {
    s.split('_')
        .filter(|p| !p.is_empty())
        .map(|p| {
            let mut c = p.chars();
            match c.next() {
                Some(f) => f.to_ascii_uppercase().to_string() + c.as_str(),
                None => String::new(),
            }
        })
        .collect()
}

/// Function spans `(name, first_line_idx, last_line_idx)` in sanitized
/// lines, found by brace counting from each `fn` keyword.
fn fn_spans(lines: &[&str]) -> Vec<(String, usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        let line = lines[i];
        if let Some(pos) = find_fn_kw(line) {
            let after = &line[pos + 3..];
            let name: String = after
                .trim_start()
                .chars()
                .take_while(|&c| is_ident_char(c))
                .collect();
            if !name.is_empty() {
                // Find the opening brace, then its close.
                let mut depth = 0i32;
                let mut opened = false;
                let mut j = i;
                'span: while j < lines.len() {
                    let scan = if j == i { &lines[j][pos..] } else { lines[j] };
                    for c in scan.chars() {
                        match c {
                            '{' => {
                                depth += 1;
                                opened = true;
                            }
                            '}' => depth -= 1,
                            // `fn f();` in a trait: no body.
                            ';' if !opened => break 'span,
                            _ => {}
                        }
                    }
                    if opened && depth <= 0 {
                        break;
                    }
                    j += 1;
                }
                if opened {
                    spans.push((name, i, j.min(lines.len() - 1)));
                }
            }
        }
        i += 1;
    }
    spans
}

pub(crate) fn find_fn_kw(line: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(pos) = line[from..].find("fn ") {
        let at = from + pos;
        from = at + 3;
        let pre_ok = at == 0 || !is_ident_char(line[..at].chars().next_back().unwrap());
        if pre_ok {
            return Some(at);
        }
    }
    None
}

/// Brace-accurate `#[cfg(test)]` regions: each attribute exempts exactly
/// the item it is attached to (through the matching close brace, or the
/// terminating `;` for brace-less items), not everything to the end of
/// the file. Returns inclusive `(start, end)` line-index ranges.
pub(crate) fn test_ranges(lines: &[&str]) -> Vec<(usize, usize)> {
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let Some(attr) = line.find("#[cfg(test)]") else {
            continue;
        };
        if ranges.iter().any(|&(a, b)| i >= a && i <= b) {
            continue; // nested attribute inside an exempt item
        }
        // Walk forward from just past the attribute to the item body.
        let mut depth = 0i32;
        let mut opened = false;
        let mut j = i;
        let mut col = attr + "#[cfg(test)]".len();
        'outer: while j < lines.len() {
            let scan = &lines[j][col.min(lines[j].len())..];
            for c in scan.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth <= 0 {
                            break 'outer;
                        }
                    }
                    ';' if !opened => break 'outer, // `#[cfg(test)] use ...;`
                    _ => {}
                }
            }
            j += 1;
            col = 0;
        }
        ranges.push((i, j.min(lines.len() - 1)));
    }
    ranges
}

fn in_ranges(ranges: &[(usize, usize)], idx: usize) -> bool {
    ranges.iter().any(|&(a, b)| idx >= a && idx <= b)
}

/// Does the raw source line carry this escape marker (inside a comment)?
fn escaped(raw_lines: &[&str], idx: usize, marker: &str) -> bool {
    raw_lines.get(idx).is_some_and(|r| r.contains(marker))
}

/// Lint one source file. `crate_dir` is the directory name under
/// `crates/` (e.g. `sim-core`, `core`) or a self-host name (`lint`,
/// `ugni-verify`); `file` is the path used in findings.
pub fn lint_source(crate_dir: &str, file: &str, src: &str) -> Vec<Finding> {
    let clean = sanitize(src);
    let lines: Vec<&str> = clean.lines().collect();
    let raw_lines: Vec<&str> = src.lines().collect();
    let tests = test_ranges(&lines);
    let mut out = Vec::new();
    let sim = SIM_CRATES.contains(&crate_dir);
    let self_host = SELF_HOST_CRATES.contains(&crate_dir);

    if sim || self_host {
        // hashmap-iter
        let prod_lines: Vec<&str> = lines
            .iter()
            .enumerate()
            .map(|(i, l)| if in_ranges(&tests, i) { "" } else { *l })
            .collect();
        let names = hash_bound_names(&prod_lines);
        for (idx, line) in lines.iter().enumerate() {
            if in_ranges(&tests, idx) || escaped(&raw_lines, idx, HASH_OK_MARKER) {
                continue;
            }
            for name in &names {
                if iterates(line, name) {
                    out.push(Finding::new(
                        "hashmap-iter",
                        file,
                        idx + 1,
                        format!(
                            "iteration over hash-ordered `{name}` — order is \
                             nondeterministic; use BTreeMap/Vec indexing, or mark a \
                             provably order-free use with `// hash-ok: <why>`"
                        ),
                    ));
                }
            }
        }
    }

    // hot-path-copy: full verb list in the simulation crates; in
    // `crates/core` only the AM flush/drain functions, whose buffer
    // recycling a copy would defeat.
    let hot_keywords: Option<&[&str]> = if sim {
        Some(HOT_PATH_KEYWORDS)
    } else if crate_dir == "core" {
        Some(CORE_HOT_PATH_KEYWORDS)
    } else {
        None
    };
    if let Some(keywords) = hot_keywords {
        for (name, a, b) in fn_spans(&lines) {
            if in_ranges(&tests, a) {
                continue;
            }
            if !keywords.iter().any(|k| name_has_keyword(&name, k)) {
                continue;
            }
            for (idx, line) in lines.iter().enumerate().take(b + 1).skip(a) {
                let Some(pat) = COPY_PATTERNS.iter().find(|p| line.contains(**p)) else {
                    continue;
                };
                if escaped(&raw_lines, idx, COPY_OK_MARKER) {
                    continue;
                }
                out.push(Finding::new(
                    "hot-path-copy",
                    file,
                    idx + 1,
                    format!(
                        "`{pat}` in per-message path `{name}` — payloads travel as \
                         refcounted Bytes; mark a deliberate copy with `// copy-ok: <why>`"
                    ),
                ));
            }
        }
    }

    if sim {
        // thread-outside-parallel: the parallel driver and its sync layer
        // are the sanctioned home for every one of these constructs.
        if !is_parallel_driver_file(file) {
            for (idx, line) in lines.iter().enumerate() {
                if in_ranges(&tests, idx) || escaped(&raw_lines, idx, THREAD_OK_MARKER) {
                    continue;
                }
                let Some((pat, _)) = THREAD_PATTERNS
                    .iter()
                    .find(|(p, whole)| boundary_match(line, p, *whole))
                else {
                    continue;
                };
                out.push(Finding::new(
                    "thread-outside-parallel",
                    file,
                    idx + 1,
                    format!(
                        "`{pat}` in a simulation crate outside the parallel driver — \
                         all concurrency lives in sim-core/src/parallel.rs and \
                         sim-core/src/sync.rs; mark a deliberate exception with \
                         `// thread-ok: <why>`"
                    ),
                ));
            }
        }
        // std-time
        for (idx, line) in lines.iter().enumerate() {
            if in_ranges(&tests, idx) || escaped(&raw_lines, idx, TIME_OK_MARKER) {
                continue;
            }
            for pat in ["std::time", "Instant::now", "SystemTime"] {
                if line.contains(pat) {
                    out.push(Finding::new(
                        "std-time",
                        file,
                        idx + 1,
                        format!("`{pat}` in a simulation crate — virtual time is the only clock"),
                    ));
                    break;
                }
            }
        }
    }

    if sim || crate_dir == "core" {
        // unwrap-in-recovery
        for (name, a, b) in fn_spans(&lines) {
            if in_ranges(&tests, a) {
                continue;
            }
            if !RECOVERY_KEYWORDS.iter().any(|k| name_has_keyword(&name, k)) {
                continue;
            }
            for (idx, line) in lines.iter().enumerate().take(b + 1).skip(a) {
                if in_ranges(&tests, idx) || escaped(&raw_lines, idx, PANIC_OK_MARKER) {
                    continue;
                }
                if line.contains(".unwrap()") || line.contains(".expect(") {
                    out.push(Finding::new(
                        "unwrap-in-recovery",
                        file,
                        idx + 1,
                        format!(
                            "unwrap/expect inside recovery path `{name}` — recovery \
                             code must degrade, not abort (or `// panic-ok: <why>`)"
                        ),
                    ));
                }
            }
        }
    }

    if crate_dir == "core" {
        // charge-category
        for (name, a, b) in fn_spans(&lines) {
            if in_ranges(&tests, a) {
                continue;
            }
            let Some(suffix) = name.strip_prefix("charge_") else {
                continue;
            };
            if suffix.is_empty() {
                continue;
            }
            let want = format!("Kind::{}", camel(suffix));
            let body = lines[a..=b.min(lines.len() - 1)].join("\n");
            if !body.contains(&want) {
                out.push(Finding::new(
                    "charge-category",
                    file,
                    a + 1,
                    format!("`fn {name}` does not record trace category `{want}`"),
                ));
            }
        }
    }

    out
}

/// Recursively collect `.rs` files under `dir`.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = rd.flatten().map(|e| e.path()).collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            rs_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// The `(crate_dir, src_dir)` scan roots: simulation crates plus `core`,
/// plus the self-hosted tool crates.
fn scan_roots(root: &Path) -> Vec<(String, PathBuf)> {
    let mut dirs: Vec<(String, PathBuf)> = Vec::new();
    for d in SIM_CRATES {
        dirs.push((d.to_string(), root.join("crates").join(d).join("src")));
    }
    dirs.push(("core".into(), root.join("crates/core/src")));
    dirs.push(("mempool".into(), root.join("crates/mempool/src")));
    dirs.push(("ugni-verify".into(), root.join("crates/ugni-verify/src")));
    dirs.push(("lint".into(), root.join("tools/lint/src")));
    dirs
}

/// Read every scanned source file as `(crate_dir, repo-relative path,
/// text)` triples — the shared input of the lexical and graph passes.
pub fn workspace_sources(root: &Path) -> Vec<(String, String, String)> {
    let mut out = Vec::new();
    for (dir, src) in scan_roots(root) {
        let mut files = Vec::new();
        rs_files(&src, &mut files);
        for f in files {
            let Ok(text) = std::fs::read_to_string(&f) else {
                continue;
            };
            let rel = f
                .strip_prefix(root)
                .unwrap_or(&f)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((dir.clone(), rel, text));
        }
    }
    out
}

/// Lint every simulation crate (plus `core` and the self-hosted tool
/// crates) under `root` with the lexical rules.
pub fn lint_workspace(root: &Path) -> Vec<Finding> {
    let mut out = Vec::new();
    for (dir, rel, text) in workspace_sources(root) {
        out.extend(lint_source(&dir, &rel, &text));
    }
    out
}

/// Run the lexical pass AND the call-graph pass over the workspace.
/// `recovery-panic-freedom` strictly subsumes `unwrap-in-recovery`
/// (reachability vs the root fn's own body), so lexical findings that
/// reappear under the graph rule are dropped in favor of the graph
/// finding and its witness chain.
pub fn lint_workspace_full(root: &Path) -> Vec<Finding> {
    let sources = workspace_sources(root);
    let mut out = Vec::new();
    for (dir, rel, text) in &sources {
        out.extend(lint_source(dir, rel, text));
    }
    let graph_findings = graph::analyze(&sources);
    let graph_lines: std::collections::BTreeSet<(String, usize)> = graph_findings
        .iter()
        .filter(|f| f.rule == "recovery-panic-freedom")
        .map(|f| (f.file.clone(), f.line))
        .collect();
    out.retain(|f| {
        f.rule != "unwrap-in-recovery" || !graph_lines.contains(&(f.file.clone(), f.line))
    });
    out.extend(graph_findings);
    out
}

/// One-line descriptions of every rule, for `--list-rules`.
pub fn rule_descriptions() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "hashmap-iter",
            "no HashMap/HashSet iteration in sim or self-hosted crates (escape: hash-ok:)",
        ),
        (
            "unwrap-in-recovery",
            "no unwrap/expect lexically inside recovery-named fns (escape: panic-ok:)",
        ),
        (
            "std-time",
            "no wall-clock reads in simulation crates (escape: time-ok:)",
        ),
        (
            "charge-category",
            "fn charge_<x> in core must record Kind::<X>",
        ),
        (
            "hot-path-copy",
            "no payload copies in per-message fns (core: flush/drain fns only; \
             escape: copy-ok:)",
        ),
        (
            "thread-outside-parallel",
            "no threads/locks/atomics outside sim-core/src/parallel.rs (escape: thread-ok:)",
        ),
        (
            "worker-purity",
            "[graph] nothing reachable from parallel worker entry points may touch statics, \
             thread primitives, or serial-only APIs (escape: worker-ok:)",
        ),
        (
            "recovery-panic-freedom",
            "[graph] nothing reachable from recovery/restore/checkpoint/repost roots may \
             panic (escape: panic-ok:)",
        ),
        (
            "charge-coverage",
            "[graph] every MachineLayer path that sends or delivers must record a Kind::* \
             charge (escape: charge-ok:)",
        ),
    ]
}
