//! Call-graph pass: flow-aware rules over a workspace call graph
//! (DESIGN.md §12).
//!
//! The lexical rules in the crate root look at one function at a time;
//! the invariants that actually carry the runtime's determinism story are
//! *transitive* — a parallel-window worker is pure only if everything it
//! can reach is pure, a recovery path is abort-free only if every helper
//! it calls is. This module parses every `fn`/`impl`/`trait` in the
//! scanned crates with the same hand-rolled lexer (offline build, no
//! `syn`), resolves calls with a conservative name+receiver heuristic,
//! and runs reachability rules that print a witness call chain with each
//! finding.
//!
//! Resolution heuristic (soundness-for-precision trade, DESIGN.md §12):
//!
//! * `self.m(..)`   → methods named `m` on the enclosing impl type, plus
//!   the enclosing trait's default `m`.
//! * `Type::f(..)`  → methods named `f` in any `impl Type`/`impl .. for
//!   Type` block, plus defaults if `Type` is a trait name.
//! * `expr.m(..)`   → **every** workspace method named `m` taking `self`
//!   (receiver type unknown without type inference — over-approximate).
//! * `f(..)`        → free functions named `f`. Uppercase-initial plain
//!   calls (tuple-struct/enum constructors) and `name!(..)` macros are
//!   skipped.
//!
//! Calls into code outside the scanned crates (std, vendored bytes,
//! apps) resolve to nothing and end the walk — the rules are about
//! workspace-defined behavior. Dynamic calls through `dyn Fn` handler
//! objects are invisible to name resolution; the handler side of the
//! worker is covered by rooting `worker-purity` at every `PeCtx` method
//! (the only capability surface handlers receive), at the typed-AM batch
//! dispatcher `am_dispatch`, and at every named fn registered as a
//! typed-AM handler at a `register_am(...)` call site.

use crate::{
    boundary_match, find_fn_kw, is_ident_char, is_parallel_driver_file, name_has_keyword, sanitize,
    test_ranges, Finding, PANIC_OK_MARKER, RECOVERY_KEYWORDS, THREAD_PATTERNS,
};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Marker on (or immediately above) a `fn` declaration: this function
/// must only run in the serial phase of the windowed driver; the
/// `worker-purity` rule forbids reaching it from a worker.
pub const SERIAL_ONLY_MARKER: &str = "serial-only:";

/// Line escape for `worker-purity` findings.
pub const WORKER_OK_MARKER: &str = "worker-ok:";

/// Line escape for `charge-coverage` findings.
pub const CHARGE_OK_MARKER: &str = "charge-ok:";

/// Worker entry points by function name: the functions that execute
/// `PeRun`/`Deliver` events inside a parallel window, plus the typed-AM
/// batch dispatcher — it is registered as a `dyn Fn` Converse handler
/// (invisible to name resolution) but runs on workers, walking batch
/// envelopes and invoking every constituent's typed handler.
const WORKER_ROOT_FNS: &[&str] = &["exec_local_event", "phase_run", "am_dispatch"];

/// Worker entry points by receiver type: handlers run on workers and
/// `PeCtx` is the entire capability surface they are handed.
const WORKER_ROOT_TYPES: &[&str] = &["PeCtx"];

/// The machine-layer trait whose impl methods are `charge-coverage`
/// roots.
const LAYER_TRAIT: &str = "MachineLayer";

/// Call-site names that model message motion: sending or delivering.
const EFFECT_CALLS: &[&str] = &["deliver_now", "deliver_at", "count_send"];

/// Panic sites for `recovery-panic-freedom`. Substring patterns; the
/// macro forms additionally require a left identifier boundary so
/// `debug_assert!` (compiled out of release figures) stays exempt.
const PANIC_SUBSTR: &[&str] = &[".unwrap()", ".expect("];
const PANIC_MACROS: &[&str] = &[
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
    "assert!(",
    "assert_eq!(",
    "assert_ne!(",
];

/// One scanned source file.
pub struct FileSrc {
    pub crate_dir: String,
    pub path: String,
    pub raw: Vec<String>,
    pub clean: Vec<String>,
}

/// One parsed function (or trait default method).
pub struct FnInfo {
    pub name: String,
    /// Enclosing impl type (`impl T`, `impl Tr for T` → `T`); None for
    /// free functions and trait-block defaults.
    pub type_name: Option<String>,
    /// Trait being implemented (`impl Tr for T` → `Tr`) or defined
    /// (trait-block defaults).
    pub trait_name: Option<String>,
    pub has_self: bool,
    pub serial_only: bool,
    pub file: usize,
    /// 0-based span of the whole item, signature included.
    pub start: usize,
    pub end: usize,
}

impl FnInfo {
    /// `Type::name` or `name`.
    pub fn qual_name(&self) -> String {
        match &self.type_name {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A call site inside a function body.
pub struct CallSite {
    pub name: String,
    /// 0-based line index in the containing file.
    pub line: usize,
    /// Resolved workspace callees (fn ids), deduped and sorted.
    pub targets: Vec<usize>,
}

pub struct Graph {
    pub files: Vec<FileSrc>,
    pub fns: Vec<FnInfo>,
    /// Indexed by fn id.
    pub calls: Vec<Vec<CallSite>>,
    /// Names of `static` items (including `thread_local!` cells) declared
    /// in the scanned crates.
    pub statics: Vec<String>,
}

/// Impl/trait block context while scanning a file.
struct BlockCtx {
    type_name: Option<String>,
    trait_name: Option<String>,
    start: usize,
    end: usize,
}

/// Strip generics and take the last path segment: `foo::Bar<T>` → `Bar`.
fn type_ident(s: &str) -> Option<String> {
    let s = s.trim();
    let no_gen = match s.find('<') {
        Some(p) => &s[..p],
        None => s,
    };
    let seg = no_gen.rsplit("::").next()?.trim();
    let id: String = seg.chars().take_while(|&c| is_ident_char(c)).collect();
    if id.is_empty() {
        None
    } else {
        Some(id)
    }
}

/// Skip a balanced `<...>` group starting at `i` (which must point at
/// `<`); returns the index just past the matching `>`.
fn skip_generics(chars: &[char], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < chars.len() {
        match chars[i] {
            '<' => depth += 1,
            '>' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Find the matching close brace for an item whose header starts at line
/// `start`, column `col`. Returns the 0-based line of the close brace
/// (or `start` if the item ends in `;` before any brace).
fn item_end(lines: &[String], start: usize, col: usize) -> usize {
    let mut depth = 0i32;
    let mut opened = false;
    let mut j = start;
    let mut c0 = col;
    while j < lines.len() {
        let line = &lines[j];
        let scan = &line[c0.min(line.len())..];
        for c in scan.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => {
                    depth -= 1;
                    if opened && depth <= 0 {
                        return j;
                    }
                }
                ';' if !opened => return j,
                _ => {}
            }
        }
        j += 1;
        c0 = 0;
    }
    lines.len().saturating_sub(1)
}

/// Parse impl/trait block headers (top level of the file) into contexts.
fn block_contexts(lines: &[String]) -> Vec<BlockCtx> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut i = 0;
    while i < lines.len() {
        let line = &lines[i];
        if depth == 0 {
            let imp = boundary_pos(line, "impl");
            let tra = boundary_pos(line, "trait");
            if let Some(pos) = imp {
                // Header may wrap lines; join until `{`.
                let mut header = line[pos..].to_string();
                let mut hl = i;
                while !header.contains('{') && !header.contains(';') && hl + 1 < lines.len() {
                    hl += 1;
                    header.push(' ');
                    header.push_str(&lines[hl]);
                }
                let body = header.split('{').next().unwrap_or("");
                // `impl<T> Tr<X> for Ty<T>` / `impl Ty`.
                let after_impl = &body[4..];
                let chars: Vec<char> = after_impl.chars().collect();
                let mut k = 0;
                while k < chars.len() && chars[k].is_whitespace() {
                    k += 1;
                }
                if k < chars.len() && chars[k] == '<' {
                    k = skip_generics(&chars, k);
                }
                let rest: String = chars[k.min(chars.len())..].iter().collect();
                let rest = rest.split(" where ").next().unwrap_or(&rest).to_string();
                let (trait_name, type_name) = match split_for(&rest) {
                    Some((tr, ty)) => (type_ident(tr), type_ident(ty)),
                    None => (None, type_ident(&rest)),
                };
                let end = item_end(lines, i, pos);
                out.push(BlockCtx {
                    type_name,
                    trait_name,
                    start: i,
                    end,
                });
            } else if let Some(pos) = tra {
                let after = &line[pos + 5..];
                let name: String = after
                    .trim_start()
                    .chars()
                    .take_while(|&c| is_ident_char(c))
                    .collect();
                if !name.is_empty() {
                    let end = item_end(lines, i, pos);
                    out.push(BlockCtx {
                        type_name: None,
                        trait_name: Some(name),
                        start: i,
                        end,
                    });
                }
            }
        }
        // Track top-level depth *after* header handling so the block's
        // own open brace moves us inside it.
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        i += 1;
    }
    out
}

/// `impl Tr for Ty` → `Some(("Tr", "Ty"))`, using a token-boundary ` for `.
fn split_for(s: &str) -> Option<(&str, &str)> {
    let mut from = 0;
    while let Some(p) = s[from..].find(" for ") {
        let at = from + p;
        from = at + 5;
        // `for` inside generics (e.g. `for<'a>`) has a `<` imbalance
        // before it; a plain scan is enough for our codebase.
        let before = &s[..at];
        let lt = before.matches('<').count();
        let gt = before.matches('>').count();
        if lt == gt {
            return Some((&s[..at], &s[at + 5..]));
        }
    }
    None
}

/// Position of whole-word token `tok` in `line`, skipping e.g. `pub `
/// prefixes automatically (any position qualifies if both boundaries
/// hold and the line is not inside a larger identifier).
fn boundary_pos(line: &str, tok: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(p) = line[from..].find(tok) {
        let at = from + p;
        from = at + tok.len();
        let left = at == 0 || !is_ident_char(line[..at].chars().next_back().unwrap());
        let right = line[at + tok.len()..]
            .chars()
            .next()
            .is_none_or(|c| !is_ident_char(c) && c != '!');
        if left && right {
            return Some(at);
        }
    }
    None
}

/// Does the signature (from the fn keyword up to the body `{` or `;`)
/// declare a `self` receiver?
fn sig_has_self(lines: &[String], start: usize, col: usize) -> bool {
    let mut sig = String::new();
    let mut j = start;
    let mut c0 = col;
    while j < lines.len() {
        let line = &lines[j];
        let scan = &line[c0.min(line.len())..];
        if let Some(p) = scan.find(['{', ';']) {
            sig.push_str(&scan[..p]);
            break;
        }
        sig.push_str(scan);
        sig.push(' ');
        j += 1;
        c0 = 0;
    }
    boundary_pos(&sig, "self").is_some()
}

/// Rust keywords and call-like forms that are never workspace calls.
fn is_call_keyword(name: &str) -> bool {
    matches!(
        name,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "loop"
            | "in"
            | "as"
            | "move"
            | "fn"
            | "where"
            | "let"
            | "else"
            | "mut"
            | "ref"
            | "box"
            | "await"
            | "use"
            | "pub"
            | "crate"
            | "super"
            | "self"
            | "Self"
            | "dyn"
            | "unsafe"
            | "impl"
            | "break"
            | "continue"
    )
}

enum CallKind {
    SelfMethod,
    Method,
    Qualified(String),
    Free,
}

/// Extract raw call candidates `(kind, name, line_idx)` from a fn body.
fn extract_calls(lines: &[String], start: usize, end: usize) -> Vec<(CallKind, String, usize)> {
    let mut out = Vec::new();
    let stop = end.min(lines.len().saturating_sub(1));
    for (idx, line) in lines.iter().enumerate().take(stop + 1).skip(start) {
        for (p, c) in line.char_indices() {
            if c != '(' {
                continue;
            }
            let head = &line[..p];
            let s = head
                .rfind(|c: char| !is_ident_char(c))
                .map(|q| q + 1)
                .unwrap_or(0);
            let name = &head[s..];
            if name.is_empty()
                || name.chars().next().is_some_and(|c| c.is_ascii_digit())
                || is_call_keyword(name)
            {
                continue;
            }
            let before = &head[..s];
            if before.ends_with("fn ") {
                continue; // a declaration, not a call
            }
            let kind = if let Some(recv) = before.strip_suffix('.') {
                let self_recv = recv.ends_with("self")
                    && recv[..recv.len() - 4]
                        .chars()
                        .next_back()
                        .is_none_or(|c| !is_ident_char(c));
                if self_recv {
                    CallKind::SelfMethod
                } else {
                    CallKind::Method
                }
            } else if let Some(qhead) = before.strip_suffix("::") {
                // Strip one turbofish/generic group: `Type::<T>::f` is rare
                // here; take the ident directly before `::`.
                let qs = qhead
                    .rfind(|c: char| !is_ident_char(c))
                    .map(|q| q + 1)
                    .unwrap_or(0);
                let qual = &qhead[qs..];
                if qual.is_empty() {
                    continue;
                }
                if qual.chars().next().is_some_and(|c| c.is_uppercase()) {
                    CallKind::Qualified(qual.to_string())
                } else {
                    // `mem::swap(..)` — module path; treat as a free call.
                    CallKind::Free
                }
            } else {
                if name.chars().next().is_some_and(|c| c.is_uppercase()) {
                    continue; // tuple-struct / enum-variant constructor
                }
                CallKind::Free
            };
            out.push((kind, name.to_string(), idx));
        }
    }
    out
}

impl Graph {
    /// Build the call graph from `(crate_dir, path, text)` sources.
    pub fn build(sources: &[(String, String, String)]) -> Graph {
        let mut files = Vec::new();
        let mut fns: Vec<FnInfo> = Vec::new();
        let mut statics: BTreeSet<String> = BTreeSet::new();
        let mut fn_blocks: Vec<(usize, usize)> = Vec::new(); // (fn id, file)

        for (crate_dir, path, text) in sources {
            let clean_text = sanitize(text);
            let clean: Vec<String> = clean_text.lines().map(|l| l.to_string()).collect();
            let raw: Vec<String> = text.lines().map(|l| l.to_string()).collect();
            let clean_refs: Vec<&str> = clean.iter().map(|s| s.as_str()).collect();
            let tests = test_ranges(&clean_refs);
            let file_id = files.len();
            let blocks = block_contexts(&clean);

            // `static NAME` / `thread_local! { static NAME }` declarations.
            for (i, line) in clean.iter().enumerate() {
                if tests.iter().any(|&(a, b)| i >= a && i <= b) {
                    continue;
                }
                let mut from = 0;
                while let Some(p) = line[from..].find("static ") {
                    let at = from + p;
                    from = at + 7;
                    let pre = line[..at].chars().next_back();
                    if pre.is_some_and(|c| is_ident_char(c) || c == '\'') {
                        continue; // `&'static str`
                    }
                    let rest = line[at + 7..].trim_start();
                    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
                    let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
                    if !name.is_empty() && rest[name.len()..].trim_start().starts_with(':') {
                        statics.insert(name);
                    }
                }
            }

            // Functions.
            let mut i = 0;
            while i < clean.len() {
                let Some(pos) = find_fn_kw(&clean[i]) else {
                    i += 1;
                    continue;
                };
                let after = &clean[i][pos + 3..];
                let name: String = after
                    .trim_start()
                    .chars()
                    .take_while(|&c| is_ident_char(c))
                    .collect();
                if name.is_empty() {
                    i += 1;
                    continue;
                }
                let end = item_end(&clean, i, pos);
                let in_test = tests.iter().any(|&(a, b)| i >= a && i <= b);
                // Bodiless trait declarations (`fn f(..);`) are not graph
                // nodes: there is nothing to analyze, and resolving a
                // dispatch to the declaration instead of the implementors
                // would just pad witness chains.
                let mut has_body = false;
                {
                    let mut j = i;
                    let mut c0 = pos;
                    'body: while j < clean.len() {
                        let line = &clean[j];
                        for c in line[c0.min(line.len())..].chars() {
                            match c {
                                '{' => {
                                    has_body = true;
                                    break 'body;
                                }
                                ';' => break 'body,
                                _ => {}
                            }
                        }
                        j += 1;
                        c0 = 0;
                    }
                }
                if !in_test && has_body {
                    let ctx = blocks.iter().find(|b| i > b.start && i <= b.end);
                    let serial_only = raw
                        .get(i.saturating_sub(1))
                        .is_some_and(|l| l.contains(SERIAL_ONLY_MARKER))
                        || raw.get(i).is_some_and(|l| l.contains(SERIAL_ONLY_MARKER));
                    fns.push(FnInfo {
                        name,
                        type_name: ctx.and_then(|c| c.type_name.clone()),
                        trait_name: ctx.and_then(|c| c.trait_name.clone()),
                        has_self: sig_has_self(&clean, i, pos),
                        serial_only,
                        file: file_id,
                        start: i,
                        end,
                    });
                    fn_blocks.push((fns.len() - 1, file_id));
                }
                // Continue scanning *inside* the span too: impl blocks
                // contain many fns, and nested fns deserve their own node.
                i += 1;
            }

            files.push(FileSrc {
                crate_dir: crate_dir.clone(),
                path: path.clone(),
                raw,
                clean,
            });
        }

        // Resolution indexes.
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_type: BTreeMap<(String, &str), Vec<usize>> = BTreeMap::new();
        let mut by_name_method: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut trait_default: BTreeMap<(String, &str), Vec<usize>> = BTreeMap::new();
        for (id, f) in fns.iter().enumerate() {
            match (&f.type_name, &f.trait_name) {
                (Some(t), _) => by_type.entry((t.clone(), &f.name)).or_default().push(id),
                (None, Some(tr)) => trait_default
                    .entry((tr.clone(), &f.name))
                    .or_default()
                    .push(id),
                (None, None) => free.entry(&f.name).or_default().push(id),
            }
            if f.has_self {
                by_name_method.entry(&f.name).or_default().push(id);
            }
        }

        // Nested fns: a fn whose span lies inside another fn's span in the
        // same file must not be treated as the outer fn's call body owner;
        // calls are attributed to the *innermost* containing fn.
        let mut calls: Vec<Vec<CallSite>> = (0..fns.len()).map(|_| Vec::new()).collect();
        for (id, f) in fns.iter().enumerate() {
            let file = &files[f.file];
            let raw_calls = extract_calls(&file.clean, f.start, f.end);
            let mut sites: BTreeMap<(usize, String), BTreeSet<usize>> = BTreeMap::new();
            for (kind, name, line) in raw_calls {
                // Attribute to innermost fn: skip lines owned by a nested fn.
                let owner = fns
                    .iter()
                    .enumerate()
                    .filter(|(_, g)| g.file == f.file && g.start <= line && line <= g.end)
                    .max_by_key(|(_, g)| g.start)
                    .map(|(gid, _)| gid);
                if owner != Some(id) {
                    continue;
                }
                let mut targets: BTreeSet<usize> = BTreeSet::new();
                match kind {
                    CallKind::SelfMethod => {
                        if let Some(t) = &f.type_name {
                            if let Some(v) = by_type.get(&(t.clone(), name.as_str())) {
                                targets.extend(v);
                            }
                        }
                        if let Some(tr) = &f.trait_name {
                            if let Some(v) = trait_default.get(&(tr.clone(), name.as_str())) {
                                targets.extend(v);
                            }
                            if f.type_name.is_none() {
                                // Default body: `self.m()` dispatches to any
                                // implementor's override.
                                if let Some(v) = by_name_method.get(name.as_str()) {
                                    targets.extend(
                                        v.iter()
                                            .filter(|&&m| {
                                                fns[m].trait_name.as_deref() == Some(tr.as_str())
                                            })
                                            .copied(),
                                    );
                                }
                            }
                        }
                        if targets.is_empty() {
                            // Inherent method on a type we didn't parse an
                            // impl header for — fall back to by-name.
                            if let Some(v) = by_name_method.get(name.as_str()) {
                                targets.extend(v);
                            }
                        }
                    }
                    CallKind::Method => {
                        if let Some(v) = by_name_method.get(name.as_str()) {
                            targets.extend(v);
                        }
                    }
                    CallKind::Qualified(q) => {
                        let q = if q == "Self" {
                            f.type_name.clone().unwrap_or(q)
                        } else {
                            q
                        };
                        if let Some(v) = by_type.get(&(q.clone(), name.as_str())) {
                            targets.extend(v);
                        }
                        if let Some(v) = trait_default.get(&(q, name.as_str())) {
                            targets.extend(v);
                        }
                    }
                    CallKind::Free => {
                        if let Some(v) = free.get(name.as_str()) {
                            targets.extend(v);
                        }
                    }
                }
                sites.entry((line, name)).or_default().extend(targets);
            }
            calls[id] = sites
                .into_iter()
                .map(|((line, name), targets)| CallSite {
                    name,
                    line,
                    targets: targets.into_iter().collect(),
                })
                .collect();
        }

        Graph {
            files,
            fns,
            calls,
            statics: statics.into_iter().collect(),
        }
    }

    /// First fn id with this (unqualified) name — test helper.
    pub fn fn_id(&self, name: &str) -> Option<usize> {
        self.fns.iter().position(|f| f.name == name)
    }

    /// Sorted, deduped qualified names of `id`'s resolved callees —
    /// test helper.
    pub fn callee_names(&self, id: usize) -> Vec<String> {
        let mut v: Vec<String> = self.calls[id]
            .iter()
            .flat_map(|c| c.targets.iter().map(|&t| self.fns[t].qual_name()))
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// `Type::name (file:line)` display label for witness chains.
    pub fn label(&self, id: usize) -> String {
        let f = &self.fns[id];
        format!(
            "{} ({}:{})",
            f.qual_name(),
            self.files[f.file].path,
            f.start + 1
        )
    }

    fn raw_line(&self, file: usize, line: usize) -> &str {
        self.files[file]
            .raw
            .get(line)
            .map(|s| s.as_str())
            .unwrap_or("")
    }

    /// Graph-rule escapes may sit on the offending line or the line
    /// above it (multi-line `panic!(..)` calls put the pattern on the
    /// macro's own line, where a trailing comment fights rustfmt).
    fn escape_at(&self, file: usize, line: usize, marker: &str) -> bool {
        self.raw_line(file, line).contains(marker)
            || (line > 0 && self.raw_line(file, line - 1).contains(marker))
    }

    /// BFS from `roots` over resolved edges. Returns a parent map:
    /// `parent[id] = Some(caller)` for reached non-roots, roots map to
    /// themselves. Deterministic: roots and edges visit in sorted order.
    fn reach(&self, roots: &[usize]) -> BTreeMap<usize, usize> {
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut sorted_roots: Vec<usize> = roots.to_vec();
        sorted_roots.sort_unstable();
        sorted_roots.dedup();
        for &r in &sorted_roots {
            parent.insert(r, r);
            queue.push_back(r);
        }
        while let Some(u) = queue.pop_front() {
            for site in &self.calls[u] {
                for &v in &site.targets {
                    if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(v) {
                        e.insert(u);
                        queue.push_back(v);
                    }
                }
            }
        }
        parent
    }

    /// Witness chain root → `id`, rendered with [`Graph::label`].
    fn chain(&self, parent: &BTreeMap<usize, usize>, id: usize) -> Vec<String> {
        let mut path = vec![id];
        let mut cur = id;
        while let Some(&p) = parent.get(&cur) {
            if p == cur {
                break;
            }
            path.push(p);
            cur = p;
        }
        path.reverse();
        path.into_iter().map(|i| self.label(i)).collect()
    }
}

/// Dedup helper: keep the first finding per (rule, file, line).
fn push_unique(out: &mut Vec<Finding>, seen: &mut BTreeSet<(String, usize)>, f: Finding) {
    if seen.insert((format!("{}\u{0}{}", f.rule, f.file), f.line)) {
        out.push(f);
    }
}

/// Typed-AM handler roots: a named fn mentioned as a *value* inside a
/// `register_am(...)` argument list is a handler body the batch dispatch
/// walk runs on a worker, so it roots `worker-purity`. Only bare
/// fn-value mentions count — an identifier not followed by `(` (that is
/// a call, attributed to the registering fn) and not path- or
/// field-qualified (`Type::f`, `x.f`). Closure registrations are covered
/// separately through the `PeCtx` method roots.
fn am_handler_roots(g: &Graph) -> Vec<usize> {
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (id, f) in g.fns.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(id);
    }
    let mut roots = Vec::new();
    for file in &g.files {
        let lines: Vec<&str> = file.clean.iter().map(|s| s.as_str()).collect();
        let tests = test_ranges(&lines);
        for (i, line) in lines.iter().enumerate() {
            let Some(pos) = line.find("register_am") else {
                continue;
            };
            if tests.iter().any(|&(a, b)| i >= a && i <= b) {
                continue;
            }
            // Collect the balanced `(...)` argument span (bounded — an
            // unclosed paren in a fixture must not scan the whole file).
            let mut span = String::new();
            let mut depth = 0i32;
            let mut opened = false;
            let mut col = pos + "register_am".len();
            let mut j = i;
            'span: while j < lines.len() && j < i + 200 {
                for c in lines[j][col.min(lines[j].len())..].chars() {
                    match c {
                        '(' => {
                            depth += 1;
                            opened = true;
                        }
                        ')' => {
                            depth -= 1;
                            if opened && depth <= 0 {
                                break 'span;
                            }
                        }
                        _ => {}
                    }
                    if opened {
                        span.push(c);
                    }
                }
                span.push(' ');
                j += 1;
                col = 0;
            }
            // Bare fn-value identifiers in the span become roots.
            let chars: Vec<char> = span.chars().collect();
            let mut k = 0;
            while k < chars.len() {
                if !is_ident_char(chars[k]) || chars[k].is_ascii_digit() {
                    k += 1;
                    continue;
                }
                let start = k;
                while k < chars.len() && is_ident_char(chars[k]) {
                    k += 1;
                }
                let tok: String = chars[start..k].iter().collect();
                let before = chars[..start].iter().rev().find(|c| !c.is_whitespace());
                let after = chars[k..].iter().find(|c| !c.is_whitespace());
                if matches!(before, Some(':') | Some('.')) || matches!(after, Some('(') | Some(':'))
                {
                    continue;
                }
                if let Some(ids) = by_name.get(tok.as_str()) {
                    roots.extend(ids.iter().copied());
                }
            }
        }
    }
    roots
}

/// worker-purity: nothing reachable from a parallel-window worker entry
/// point may touch statics or thread primitives, or call a fn marked
/// `// serial-only:`. Escape: `// worker-ok: <why>` on the line.
fn check_worker_purity(g: &Graph, out: &mut Vec<Finding>) {
    let mut roots: Vec<usize> = g
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            WORKER_ROOT_FNS.contains(&f.name.as_str())
                || f.type_name
                    .as_deref()
                    .is_some_and(|t| WORKER_ROOT_TYPES.contains(&t))
        })
        .map(|(id, _)| id)
        .collect();
    roots.extend(am_handler_roots(g));
    roots.sort_unstable();
    roots.dedup();
    if roots.is_empty() {
        return;
    }
    let parent = g.reach(&roots);
    let mut seen = BTreeSet::new();
    for &id in parent.keys() {
        let f = &g.fns[id];
        let file = &g.files[f.file];
        let in_driver = is_parallel_driver_file(&file.path);

        // Serial-only edges.
        for site in &g.calls[id] {
            let serial: Vec<usize> = site
                .targets
                .iter()
                .copied()
                .filter(|&t| g.fns[t].serial_only)
                .collect();
            if serial.is_empty() || g.escape_at(f.file, site.line, WORKER_OK_MARKER) {
                continue;
            }
            let mut chain = g.chain(&parent, id);
            chain.push(g.label(serial[0]));
            let mut finding = Finding::new(
                "worker-purity",
                &file.path,
                site.line + 1,
                format!(
                    "worker-reachable call to serial-only `{}` from `{}` — workers must \
                     buffer effects in ExecOut, not apply them (or `// worker-ok: <why>`)",
                    g.fns[serial[0]].qual_name(),
                    f.name
                ),
            );
            finding.chain = chain;
            push_unique(out, &mut seen, finding);
        }

        // Thread primitives and statics, line by line. The parallel
        // driver file is the sanctioned implementation of the pool and
        // barrier — its internals are exempt from the primitive check
        // (the lexical rule already confines these constructs to it).
        for (off, line) in file.clean[f.start..=f.end.min(file.clean.len() - 1)]
            .iter()
            .enumerate()
        {
            let lineno = f.start + off;
            if g.escape_at(f.file, lineno, WORKER_OK_MARKER) {
                continue;
            }
            if !in_driver {
                if let Some((pat, _)) = THREAD_PATTERNS
                    .iter()
                    .find(|(p, whole)| boundary_match(line, p, *whole))
                {
                    let mut finding = Finding::new(
                        "worker-purity",
                        &file.path,
                        lineno + 1,
                        format!(
                            "thread primitive `{pat}` inside worker-reachable `{}` — \
                             cross-thread state breaks window determinism \
                             (or `// worker-ok: <why>`)",
                            f.name
                        ),
                    );
                    finding.chain = g.chain(&parent, id);
                    push_unique(out, &mut seen, finding);
                    continue;
                }
            }
            if let Some(st) = g.statics.iter().find(|st| boundary_match(line, st, true)) {
                let mut finding = Finding::new(
                    "worker-purity",
                    &file.path,
                    lineno + 1,
                    format!(
                        "worker-reachable `{}` touches static `{st}` — shared mutable \
                         state must stay on the serial phase (or `// worker-ok: <why>`)",
                        f.name
                    ),
                );
                finding.chain = g.chain(&parent, id);
                push_unique(out, &mut seen, finding);
            }
        }
    }
}

/// recovery-panic-freedom: nothing reachable from a recovery-named root
/// may panic. Escape: `// panic-ok: <why>` on the line.
fn check_recovery_panics(g: &Graph, out: &mut Vec<Finding>) {
    let roots: Vec<usize> = g
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            RECOVERY_KEYWORDS
                .iter()
                .any(|k| name_has_keyword(&f.name, k))
        })
        .map(|(id, _)| id)
        .collect();
    if roots.is_empty() {
        return;
    }
    let parent = g.reach(&roots);
    let mut seen = BTreeSet::new();
    for &id in parent.keys() {
        let f = &g.fns[id];
        let file = &g.files[f.file];
        for (off, line) in file.clean[f.start..=f.end.min(file.clean.len() - 1)]
            .iter()
            .enumerate()
        {
            let lineno = f.start + off;
            if g.escape_at(f.file, lineno, PANIC_OK_MARKER) {
                continue;
            }
            let hit = PANIC_SUBSTR
                .iter()
                .find(|p| line.contains(**p))
                .or_else(|| PANIC_MACROS.iter().find(|p| boundary_match(line, p, false)));
            let Some(pat) = hit else { continue };
            let mut finding = Finding::new(
                "recovery-panic-freedom",
                &file.path,
                lineno + 1,
                format!(
                    "`{}` in `{}` is reachable from a recovery root — recovery must \
                     degrade, not abort (or `// panic-ok: <why>`)",
                    pat.trim_end_matches('('),
                    f.name
                ),
            );
            finding.chain = g.chain(&parent, id);
            push_unique(out, &mut seen, finding);
        }
    }
}

/// charge-coverage: every `deliver_now`/`deliver_at`/`count_send` call
/// reachable from a `MachineLayer` method must have a `charge_*` call (or
/// a literal `Kind::` record) somewhere on a root→site corridor. Escape:
/// `// charge-ok: <why>` on the effect line.
fn check_charge_coverage(g: &Graph, out: &mut Vec<Finding>) {
    let roots: Vec<usize> = g
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.trait_name.as_deref() == Some(LAYER_TRAIT))
        .map(|(id, _)| id)
        .collect();
    if roots.is_empty() {
        return;
    }
    let parent = g.reach(&roots);

    // Does fn `id` itself record a charge?
    let charges: BTreeSet<usize> = parent
        .keys()
        .copied()
        .filter(|&id| {
            let f = &g.fns[id];
            if g.calls[id].iter().any(|c| c.name.starts_with("charge")) {
                return true;
            }
            let file = &g.files[f.file];
            file.clean[f.start..=f.end.min(file.clean.len() - 1)]
                .iter()
                .any(|l| l.contains("Kind::") && l.contains(".record("))
        })
        .collect();

    // Reverse edges within the reached set.
    let mut rev: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for &u in parent.keys() {
        for site in &g.calls[u] {
            for &v in &site.targets {
                if parent.contains_key(&v) {
                    rev.entry(v).or_default().push(u);
                }
            }
        }
    }

    let mut seen = BTreeSet::new();
    for &id in parent.keys() {
        let f = &g.fns[id];
        // A charge fn's own delivery mechanics are its business.
        if f.name.starts_with("charge") {
            continue;
        }
        let file = &g.files[f.file];
        for site in &g.calls[id] {
            if !EFFECT_CALLS.contains(&site.name.as_str()) {
                continue;
            }
            if g.escape_at(f.file, site.line, CHARGE_OK_MARKER) {
                continue;
            }
            // Corridor = every reached fn that can reach `id` (ancestors
            // on any root→id path), plus `id` itself.
            let mut corridor: BTreeSet<usize> = BTreeSet::new();
            let mut stack = vec![id];
            while let Some(u) = stack.pop() {
                if !corridor.insert(u) {
                    continue;
                }
                if let Some(preds) = rev.get(&u) {
                    stack.extend(preds.iter().copied());
                }
            }
            if corridor.iter().any(|c| charges.contains(c)) {
                continue;
            }
            let mut finding = Finding::new(
                "charge-coverage",
                &file.path,
                site.line + 1,
                format!(
                    "`{}` reachable from a MachineLayer method without any `charge_*` \
                     (or Kind:: record) on the path — modeled time must be charged \
                     (or `// charge-ok: <why>`)",
                    site.name
                ),
            );
            finding.chain = g.chain(&parent, id);
            push_unique(out, &mut seen, finding);
        }
    }
}

/// Run all graph rules over the given sources.
pub fn analyze(sources: &[(String, String, String)]) -> Vec<Finding> {
    let g = Graph::build(sources);
    let mut out = Vec::new();
    check_worker_purity(&g, &mut out);
    check_recovery_panics(&g, &mut out);
    check_charge_coverage(&g, &mut out);
    out
}
