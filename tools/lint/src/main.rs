//! `cargo run -p lint-pass`: run the workspace lints and exit nonzero on
//! any finding (CI gates on this).

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    // tools/lint -> workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let findings = lint_pass::lint_workspace(root);
    if findings.is_empty() {
        println!("lint-pass: workspace clean");
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        println!("{f}");
    }
    println!("lint-pass: {} finding(s)", findings.len());
    ExitCode::FAILURE
}
