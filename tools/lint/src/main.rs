//! `cargo run -p lint-pass [-- --graph] [--json <file>] [--list-rules]`:
//! run the workspace lints and exit nonzero on any finding (CI gates on
//! this).
//!
//! * `--graph`       also run the call-graph rules (worker-purity,
//!   recovery-panic-freedom, charge-coverage) with witness call chains.
//! * `--json <file>` write a machine-readable report (`-` for stdout).
//! * `--list-rules`  print every rule with a one-line description.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut graph = false;
    let mut json: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--graph" => graph = true,
            "--json" => match args.next() {
                Some(p) => json = Some(p),
                None => {
                    eprintln!("lint-pass: --json requires a file argument (or `-`)");
                    return ExitCode::FAILURE;
                }
            },
            "--list-rules" => {
                for (rule, desc) in lint_pass::rule_descriptions() {
                    println!("{rule:<24} {desc}");
                }
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("lint-pass: unknown argument `{other}`");
                eprintln!("usage: lint-pass [--graph] [--json <file>] [--list-rules]");
                return ExitCode::FAILURE;
            }
        }
    }

    // tools/lint -> workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let findings = if graph {
        lint_pass::lint_workspace_full(root)
    } else {
        lint_pass::lint_workspace(root)
    };

    if let Some(path) = &json {
        let report = lint_pass::report_json(&findings);
        if path == "-" {
            print!("{report}");
        } else if let Err(e) = std::fs::write(path, report) {
            eprintln!("lint-pass: write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if findings.is_empty() {
        println!(
            "lint-pass: workspace clean ({} pass)",
            if graph { "lexical+graph" } else { "lexical" }
        );
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        println!("{f}");
    }
    println!("lint-pass: {} finding(s)", findings.len());
    ExitCode::FAILURE
}
